"""The NBTI/leakage analysis and optimization platform (paper Fig. 6).

One facade wires the whole flow together, mirroring the paper's block
diagram:

* active mode: input signal probabilities -> internal-node SPs ->
  per-PMOS stress duty cycles;
* standby mode: logic simulation of the parked vector -> internal node
  states -> per-PMOS standby stress;
* the temperature-aware transistor-level NBTI model -> per-gate dVth;
* timing calculation (STA) -> aged circuit delay;
* input-vector-aware leakage lookup tables -> standby leakage;
* input vector generation (the Fig. 7 MLV search) closing the
  leakage/NBTI co-optimization loop.

"Because the inputs of our flow include circuit netlists, technology
libraries, and NBTI modelings, this flow can deal with different
circuits under different technology libraries and NBTI models" — all
three are constructor parameters here too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cells.leakage import LeakageTable
from repro.cells.library import Library, build_library
from repro.constants import TEN_YEARS
from repro.context import AnalysisContext
from repro.core.aging import DEFAULT_MODEL, NbtiModel
from repro.core.profiles import OperatingProfile
from repro.ivc.mlv import (
    MLVSearchResult,
    NbtiAwareSelection,
    probability_based_mlv_search,
    select_mlv_for_nbti,
)
from repro.leakage.circuit import expected_leakage, leakage_for_vector
from repro.netlist.circuit import Circuit
from repro.sim.vectors import bits_to_vector
from repro.sta.degradation import ALL_ZERO, AgingAnalyzer, StandbyStates


@dataclass(frozen=True)
class ScenarioReport:
    """One circuit under one operating scenario.

    All delays in seconds, leakages in amperes, degradations fractional.
    """

    circuit_name: str
    profile: OperatingProfile
    lifetime: float
    fresh_delay: float
    aged_delay: float
    degradation: float
    active_leakage_expected: float
    standby_leakage: Optional[float]

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"circuit            : {self.circuit_name}",
            f"RAS                : {self.profile.ras_label()}",
            f"T_active/T_standby : {self.profile.t_active:.0f} K / "
            f"{self.profile.t_standby:.0f} K",
            f"fresh delay        : {self.fresh_delay * 1e9:.4f} ns",
            f"aged delay         : {self.aged_delay * 1e9:.4f} ns "
            f"(+{self.degradation * 100:.2f} % after "
            f"{self.lifetime / 3.15e7:.1f} y)",
            f"expected leakage   : {self.active_leakage_expected * 1e6:.2f} uA",
        ]
        if self.standby_leakage is not None:
            lines.append(
                f"standby leakage    : {self.standby_leakage * 1e6:.2f} uA")
        return "\n".join(lines)


@dataclass(frozen=True)
class CoOptimizationReport:
    """Outcome of the leakage/NBTI co-optimization loop (Fig. 6 + 7)."""

    circuit_name: str
    search: MLVSearchResult
    selection: NbtiAwareSelection
    expected_leakage: float

    @property
    def chosen_leakage(self) -> float:
        return self.selection.chosen.leakage

    @property
    def leakage_reduction(self) -> float:
        """Standby leakage saved vs the expected (unparked) leakage."""
        if self.expected_leakage == 0:
            return 0.0
        return 1.0 - self.chosen_leakage / self.expected_leakage

    @property
    def chosen_degradation(self) -> float:
        return self.selection.chosen.relative_degradation

    @property
    def mlv_delay_spread(self) -> float:
        return self.selection.mlv_delay_spread


class AnalysisPlatform:
    """The Fig. 6 platform: analysis + co-optimization entry points.

    A thin facade over the shared memoized evaluation layer: the
    platform keeps one :class:`~repro.context.AnalysisContext` per
    analyzed circuit (see :meth:`context_for`), so repeated scenarios,
    co-optimization loops, and mixed queries against the same netlist
    reuse every derived artifact — and one leakage lookup table (a
    circuit-independent object) is shared across all of them.

    Args:
        library: standard-cell library (a technology binding).
        model: NBTI model (swap for ablations).
        leakage_temperature: temperature of the leakage lookup tables
            (the paper characterizes leakage at 400 K).
    """

    def __init__(self, library: Optional[Library] = None,
                 model: NbtiModel = DEFAULT_MODEL,
                 leakage_temperature: float = 400.0):
        self.library = library or build_library()
        self.model = model
        self.leakage_temperature = leakage_temperature
        self.analyzer = AgingAnalyzer(library=self.library, model=model)
        self._leakage_table: Optional[LeakageTable] = None
        self._contexts: Dict[int, AnalysisContext] = {}

    @property
    def leakage_table(self) -> LeakageTable:
        """The per-cell leakage lookup table, built on first use."""
        if self._leakage_table is None:
            self._leakage_table = LeakageTable.build(
                self.library, self.leakage_temperature)
        return self._leakage_table

    def context_for(self, circuit: Circuit) -> AnalysisContext:
        """The platform's memoized evaluation context for ``circuit``.

        One context is kept per circuit object; all contexts share this
        platform's library, model, and (lazily built) leakage table.
        After mutating a circuit in place, call ``invalidate()`` on the
        returned context.
        """
        ctx = self._contexts.get(id(circuit))
        if ctx is None or ctx.circuit is not circuit:
            ctx = AnalysisContext(
                circuit, library=self.library, model=self.model,
                leakage_temperature=self.leakage_temperature,
                leakage_table=lambda: self.leakage_table)
            self._contexts[id(circuit)] = ctx
        return ctx

    def adopt_context(self, context: AnalysisContext) -> None:
        """Install a pre-warmed context as this platform's context for
        its circuit.

        The pool-worker hydration path: a context rebuilt from an
        :class:`~repro.artifacts.bundle.ArtifactBundle` arrives with its
        compiled artifacts already seeded; adopting it makes
        :meth:`context_for` return it instead of building a cold one.
        If the platform has no leakage table yet and the context owns a
        built one, the platform adopts that too (the table is
        circuit-independent).

        Raises:
            ValueError: when the context is bound to a different library
                object — the platform's analyzer and the context's
                caches must agree on identity.
        """
        if context.library is not self.library:
            raise ValueError("context is bound to a different library; "
                             "build the platform on context.library")
        self._contexts[id(context.circuit)] = context
        if (self._leakage_table is None
                and "leakage_table" in context._caches):
            self._leakage_table = context.leakage_table

    def analyze_scenario(self, circuit: Circuit, profile: OperatingProfile,
                         lifetime: float = TEN_YEARS, *,
                         standby: StandbyStates = ALL_ZERO) -> ScenarioReport:
        """Joint timing-degradation + leakage view of one scenario."""
        ctx = self.context_for(circuit)
        timing = self.analyzer.aged_timing(circuit, profile, lifetime,
                                           standby=standby, context=ctx)
        active_leak = expected_leakage(circuit, ctx.leakage_table,
                                       library=self.library, context=ctx)
        standby_leak = None
        if isinstance(standby, dict):
            standby_leak = leakage_for_vector(circuit, standby,
                                              ctx.leakage_table,
                                              self.library, context=ctx)
        return ScenarioReport(
            circuit_name=circuit.name,
            profile=profile,
            lifetime=lifetime,
            fresh_delay=timing.fresh_delay,
            aged_delay=timing.aged_delay,
            degradation=timing.relative_degradation,
            active_leakage_expected=active_leak,
            standby_leakage=standby_leak,
        )

    def co_optimize(self, circuit: Circuit, profile: OperatingProfile,
                    lifetime: float = TEN_YEARS, *,
                    n_vectors: int = 64, max_set_size: int = 8,
                    range_fraction: float = 0.04,
                    seed: int = 0) -> CoOptimizationReport:
        """The full loop: MLV search, then NBTI-aware MLV selection.

        Every candidate vector is simulated once: the MLV search stores
        its logic states and leakage in the circuit's context, and the
        NBTI-aware selection pass reuses them together with one set of
        signal probabilities, stress duties, gate loads, and one fresh
        STA (see ``benchmarks/test_context_reuse.py`` for the counters).
        """
        ctx = self.context_for(circuit)
        search = probability_based_mlv_search(
            circuit, ctx.leakage_table, n_vectors=n_vectors,
            range_fraction=range_fraction, max_set_size=max_set_size,
            seed=seed, library=self.library, context=ctx)
        selection = select_mlv_for_nbti(circuit, search, profile, lifetime,
                                        self.analyzer, context=ctx)
        return CoOptimizationReport(
            circuit_name=circuit.name,
            search=search,
            selection=selection,
            expected_leakage=expected_leakage(circuit, ctx.leakage_table,
                                              library=self.library,
                                              context=ctx),
        )
