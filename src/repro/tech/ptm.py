"""PTM-90nm-like technology parameter sets.

The paper characterizes its standard-cell library with the PTM 90 nm bulk
CMOS model [43] at Vdd = 1.0 V and |Vth| = 220 mV.  We capture the
parameters our analytical device models need in two frozen dataclasses:

* :class:`MosfetParams` — one polarity's parameters (NMOS or PMOS),
* :class:`Technology` — a named pair of polarities plus global supply,
  oxide, and thermal coefficients.

Three instances are provided:

* :data:`PTM90`     — the paper's nominal high-performance process,
* :data:`PTM90_HVT` — high-Vth flavor for dual-Vth assignment (+100 mV),
* :data:`PTM90_LP`  — low-power flavor (thicker oxide, +130 mV Vth)
  matching the paper's Section 5 discussion of LP libraries.

Values are chosen to be PTM-plausible and, where the paper anchors a
number (leakage ordering of input vectors, Fig. 8/9 endpoints), tuned so
the reproduction lands on the published behaviour.  The NBTI-specific
constants live in :mod:`repro.core.calibration`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.constants import EPSILON_0, EPSILON_SIO2


@dataclass(frozen=True)
class MosfetParams:
    """Parameters for one MOSFET polarity.

    Attributes:
        polarity: ``"nmos"`` or ``"pmos"``.
        vth0: zero-bias threshold voltage magnitude in volts.
        mobility_factor: relative drive strength (NMOS = 1.0); folds the
            electron/hole mobility ratio into the current equations.
        subthreshold_swing_factor: the ideality factor *n* in
            ``I ~ exp(Vgs/(n vT))``; ~1.4–1.6 for 90 nm bulk.
        dibl: DIBL coefficient (V of Vth reduction per V of Vds).
        vth_temp_coefficient: dVth/dT magnitude in V/K (Vth magnitude
            shrinks as temperature rises).
        i0_density: subthreshold pre-factor current per unit W/L at the
            reference temperature with Vgs = Vth, in amperes.
        gate_leak_density: gate tunneling current density for an ON
            transistor at Vox = Vdd, in A/m^2 of gate area.  NMOS
            electron conduction-band tunneling is much larger than PMOS
            hole valence-band tunneling, which is what makes the INV
            input-0 state the minimum-leakage state in Table 2.
        gate_leak_voltage_scale: exponential voltage scale of the gate
            tunneling current, in volts.
    """

    polarity: str
    vth0: float
    mobility_factor: float
    subthreshold_swing_factor: float
    dibl: float
    vth_temp_coefficient: float
    i0_density: float
    gate_leak_density: float
    gate_leak_voltage_scale: float

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise ValueError(f"polarity must be 'nmos' or 'pmos', got {self.polarity!r}")
        if self.vth0 <= 0:
            raise ValueError("vth0 is a magnitude and must be positive")


@dataclass(frozen=True)
class Technology:
    """A named technology: global electrical parameters plus both polarities.

    Attributes:
        name: identifier, e.g. ``"ptm90"``.
        vdd: supply voltage in volts.
        tox: effective gate-oxide thickness in meters.
        lmin: drawn channel length in meters.
        wmin: minimum transistor width in meters.
        alpha: velocity-saturation index of the alpha-power law.  The
            paper quotes "from 1 to 2"; 2.0 reproduces its published
            degradation percentages (Table 4 / Fig. 5) through eq. (22).
        reference_temperature: kelvin at which ``i0_density`` is quoted.
        gate_cap_per_um: gate input capacitance per micron of width (F/m
            expressed per meter of W), used for STA loads.
        nmos / pmos: per-polarity parameters.
    """

    name: str
    vdd: float
    tox: float
    lmin: float
    wmin: float
    alpha: float
    reference_temperature: float
    gate_cap_per_width: float
    nmos: MosfetParams
    pmos: MosfetParams

    @property
    def cox(self) -> float:
        """Gate-oxide capacitance per unit area in F/m^2."""
        return EPSILON_0 * EPSILON_SIO2 / self.tox

    def params(self, polarity: str) -> MosfetParams:
        """Return the :class:`MosfetParams` for ``polarity``."""
        if polarity == "nmos":
            return self.nmos
        if polarity == "pmos":
            return self.pmos
        raise ValueError(f"unknown polarity {polarity!r}")


_NMOS_90 = MosfetParams(
    polarity="nmos",
    vth0=0.220,
    mobility_factor=1.0,
    subthreshold_swing_factor=1.5,
    dibl=0.08,
    vth_temp_coefficient=0.6e-3,
    i0_density=4.0e-7,
    gate_leak_density=1.0e7,
    gate_leak_voltage_scale=0.30,
)

_PMOS_90 = MosfetParams(
    polarity="pmos",
    vth0=0.220,
    mobility_factor=0.42,
    subthreshold_swing_factor=1.5,
    dibl=0.07,
    vth_temp_coefficient=0.6e-3,
    i0_density=1.7e-7,
    gate_leak_density=6.0e5,
    gate_leak_voltage_scale=0.30,
)

#: The paper's nominal process: PTM 90 nm bulk, Vdd = 1.0 V, |Vth| = 220 mV.
PTM90 = Technology(
    name="ptm90",
    vdd=1.0,
    tox=1.4e-9,
    lmin=90e-9,
    wmin=120e-9,
    alpha=2.0,
    reference_temperature=300.0,
    gate_cap_per_width=1.0e-9,
    nmos=_NMOS_90,
    pmos=_PMOS_90,
)

#: High-Vth variant for dual-Vth assignment (A4 extension): +100 mV.
PTM90_HVT = Technology(
    name="ptm90_hvt",
    vdd=1.0,
    tox=1.4e-9,
    lmin=90e-9,
    wmin=120e-9,
    alpha=2.0,
    reference_temperature=300.0,
    gate_cap_per_width=1.0e-9,
    nmos=replace(_NMOS_90, vth0=0.320),
    pmos=replace(_PMOS_90, vth0=0.320),
)

#: Low-power variant per the paper's Section 5 discussion: thicker oxide,
#: higher Vth, so both leakage and NBTI-induced degradation shrink.
PTM90_LP = Technology(
    name="ptm90_lp",
    vdd=1.0,
    tox=2.0e-9,
    lmin=90e-9,
    wmin=120e-9,
    alpha=2.0,
    reference_temperature=300.0,
    gate_cap_per_width=1.2e-9,
    nmos=replace(_NMOS_90, vth0=0.350, i0_density=1.2e-7, gate_leak_density=1.0e5),
    pmos=replace(_PMOS_90, vth0=0.350, i0_density=5.0e-8, gate_leak_density=6.0e3),
)

_REGISTRY = {t.name: t for t in (PTM90, PTM90_HVT, PTM90_LP)}


def get_technology(name: str) -> Technology:
    """Look up a registered technology by name.

    Raises:
        KeyError: if ``name`` is not one of the registered technologies.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown technology {name!r}; known: {known}") from None
