"""Command-line interface: ``python -m repro <command> ...``.

Gives the paper's main analyses a shell-friendly surface:

* ``info``      — netlist statistics and cell mix,
* ``generate``  — emit a seeded synthetic benchmark netlist,
* ``age``       — temperature-aware aged timing of a circuit,
* ``mlv``       — leakage/NBTI co-optimized standby vector search,
* ``sleep``     — sleep-transistor sizing and aged gated timing,
* ``guardband`` — device-level lifetime guard-band,
* ``table1``    — the paper's Table 1 dVth grid,
* ``paths``     — K longest (optionally aged) paths,
* ``table4``    — internal-node-control potential sweep,
* ``sweep``     — co-optimize many circuits, one process per circuit,
* ``cache``     — inspect / warm / clear a persistent artifact store,
* ``serve``     — run the long-running analysis service (HTTP + queue),
* ``submit``    — send one aging query to a running service,
* ``result``    — fetch (and render) a submitted job's numbers,
* ``report``    — run history, report diffing (the perf-regression
  gate), and Chrome/Perfetto trace-timeline export.

Circuits are named by ISCAS85 benchmark (``c432`` ...), bundled netlist
(``c17``), or a ``.bench`` file path.

``age`` and ``sweep`` accept ``--store DIR``: compiled artifacts (and,
for ``age``, the final numbers) persist in a content-addressed
:class:`~repro.artifacts.store.ArtifactStore`, so a repeated run
recomputes nothing.  Store diagnostics go to stderr; stdout carries
only the results and is byte-identical between cold and warm runs.
With ``--store`` active, ``age``/``sweep`` (and ``serve`` at drain)
also file a run record — the traced RunReport plus host/git/command
identity — into the store's ``runs/`` history, browsable with
``repro report history`` and comparable with ``repro report diff``.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__, obs
from repro.constants import TEN_YEARS, years
from repro.core import (
    DEFAULT_MODEL,
    WORST_CASE_DEVICE,
    OperatingProfile,
    guard_band,
)
from repro.flow.report import format_table, mv, ns, pct, ua
from repro.netlist import iscas85, load_bench, load_packaged
from repro.netlist.circuit import Circuit


def resolve_circuit(name: str) -> Circuit:
    """Map a CLI circuit argument onto a loaded netlist."""
    if name in iscas85.SPECS:
        return iscas85.load(name)
    try:
        return load_packaged(name)
    except FileNotFoundError:
        pass
    path = Path(name)
    if path.exists():
        return load_bench(path)
    known = ", ".join(list(iscas85.NAMES) + ["c17"])
    raise SystemExit(f"error: unknown circuit {name!r} "
                     f"(known benchmarks: {known}; or pass a .bench path)")


def _add_profile_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ras", default="1:9",
                        help="active:standby ratio (default 1:9)")
    parser.add_argument("--t-active", type=float, default=400.0,
                        help="active temperature in K (default 400)")
    parser.add_argument("--t-standby", type=float, default=330.0,
                        help="standby temperature in K (default 330)")
    parser.add_argument("--years", type=float, default=10.0,
                        help="lifetime horizon in years (default 10)")


def _profile_from(args) -> OperatingProfile:
    return OperatingProfile.from_ras(args.ras, t_active=args.t_active,
                                     t_standby=args.t_standby)


def _engine_lines() -> List[str]:
    """Availability of each evaluation engine, one line per engine."""
    lines = []
    try:
        import numpy
        from repro.sta.compiled import CompiledTiming  # noqa: F401

        lines.append("compiled STA/aging kernels: available "
                     f"(numpy {numpy.__version__})")
    except ImportError:
        lines.append("compiled STA/aging kernels: unavailable (no numpy)")
    try:
        from repro.sim.packed import PackedSimulator  # noqa: F401

        lines.append("packed bit-parallel simulation: available")
    except ImportError:
        lines.append("packed bit-parallel simulation: unavailable")
    lines.append("scalar oracle paths: available")
    return lines


def cmd_info(args) -> int:
    """``info``: netlist statistics, cell mix, engine availability."""
    circuit = resolve_circuit(args.circuit)
    stats = circuit.stats()
    print(f"{circuit.name}: {stats['inputs']} inputs, "
          f"{stats['outputs']} outputs, {stats['gates']} gates, "
          f"depth {stats['depth']}")
    rows = [[cell, count] for cell, count in circuit.cell_histogram().items()]
    print(format_table(["cell", "count"], rows))
    print(f"repro {__version__}")
    for line in _engine_lines():
        print(line)
    return 0


def cmd_generate(args) -> int:
    """``generate``: emit a seeded synthetic circuit as a ``.bench`` file.

    Construction uses the array-native generator engine, so 10^5-gate
    circuits build in seconds; the same (gates, seed) always produces
    the same file bytes (the fingerprint is printed for verification).
    Without ``--inputs``/``--outputs`` the canonical scale-corpus
    profile applies — identical to the benchmark suite's circuits.

    The reported stats and fingerprint describe the circuit *as
    written*: ``.bench`` has no AOI/OAI keywords, so the exporter
    expands complex cells into exact 2-3 gate AND/OR + NAND/NOR
    decompositions, and every later ``repro`` command sees that
    expanded netlist.
    """
    import math

    from repro.artifacts.fingerprint import circuit_fingerprint
    from repro.netlist import load_bench, save_bench
    from repro.netlist.generators import random_logic, scale_circuit

    if args.inputs is None and args.outputs is None:
        circuit = scale_circuit(args.gates, seed=args.seed, name=args.name)
    else:
        n_inputs = (args.inputs if args.inputs is not None
                    else max(32, int(round(math.sqrt(args.gates)))))
        n_outputs = (args.outputs if args.outputs is not None
                     else max(8, n_inputs // 4))
        name = args.name or f"r{args.gates}s{args.seed}"
        circuit = random_logic(name, n_inputs, n_outputs, args.gates,
                               args.seed,
                               locality=max(64.0, math.sqrt(args.gates)),
                               engine="array")
    out = Path(args.out)
    save_bench(circuit, out)
    on_disk = load_bench(out)
    stats = on_disk.stats()
    print(f"generated      : {circuit.name}")
    print(f"profile        : {stats['inputs']} inputs, "
          f"{stats['outputs']} outputs, {stats['gates']} gates "
          f"(target {args.gates}), depth {stats['depth']}")
    if stats["gates"] != circuit.n_gates():
        print(f"note           : {circuit.n_gates()} cells expanded to "
              f"{stats['gates']} bench gates (AOI/OAI have no .bench "
              "keyword and export as exact decompositions)")
    print(f"seed           : {args.seed}")
    print(f"fingerprint    : {circuit_fingerprint(on_disk)}")
    print(f"wrote          : {out}")
    return 0


def _print_age_report(circuit_name: str, profile: OperatingProfile,
                      years_f: float, standby: str, numbers) -> None:
    """The ``age`` stdout block, shared with ``submit``/``result``.

    One renderer is what makes a served result byte-identical to the
    local ``repro age`` output (the e2e cache-equivalence gate).
    """
    print(f"circuit        : {circuit_name}")
    print(f"scenario       : RAS {profile.ras_label()}, "
          f"{profile.t_active:.0f} K / {profile.t_standby:.0f} K, "
          f"{years_f:g} years, {standby}-case standby")
    print(f"fresh delay    : {ns(numbers['fresh_delay'])} ns")
    print(f"aged delay     : {ns(numbers['aged_delay'])} ns")
    print(f"degradation    : {pct(numbers['degradation'])}")
    print(f"worst gate dVth: {mv(numbers['max_shift'])} mV")


def _store_note(store) -> None:
    """Print the store's hit/miss counters (stderr: diagnostics only)."""
    snap = store.stats.snapshot()
    b = snap.get("bundle", {"hits": 0, "misses": 0})
    r = snap.get("result", {"hits": 0, "misses": 0})
    print(f"store: bundle hits={b['hits']} misses={b['misses']}, "
          f"result hits={r['hits']} misses={r['misses']}", file=sys.stderr)


def cmd_age(args) -> int:
    """``age``: temperature-aware aged timing of one circuit.

    With ``--store`` the compiled artifacts hydrate from (and persist
    to) the artifact store and the final numbers are served from its
    result cache; JSON round-trips floats exactly, so a warm run's
    stdout is byte-identical to the cold run's.
    """
    from repro.context import AnalysisContext
    from repro.sta import ALL_ONE, ALL_ZERO
    circuit = resolve_circuit(args.circuit)
    profile = _profile_from(args)
    standby = {"worst": ALL_ZERO, "best": ALL_ONE}[args.standby]
    store_dir = getattr(args, "store", None)
    if store_dir is None:
        # Summary path: both STA passes stay on ndarrays, so generated
        # 10^5-gate circuits age in kernel time.  Same floats as the
        # full aged_timing() result (compiled == scalar, pinned).
        context = AnalysisContext(circuit)
        res = context.aged_delays(profile, years(args.years),
                                  standby=standby)
        numbers = {"fresh_delay": res.fresh_delay,
                   "aged_delay": res.aged_delay,
                   "degradation": res.relative_degradation,
                   "max_shift": res.max_shift}
    else:
        from repro.artifacts import ArtifactStore, scenario_key

        store = ArtifactStore(store_dir)
        context = AnalysisContext(circuit, store=store)
        key = scenario_key({"command": "age", "ras": args.ras,
                            "t_active": args.t_active,
                            "t_standby": args.t_standby,
                            "years": args.years,
                            "standby": args.standby})
        circuit_fp = context.content_fingerprints()["circuit"]
        numbers = store.load_result(circuit_fp, key)
        if numbers is None:
            res = context.aged_delays(profile, years(args.years),
                                      standby=standby)
            numbers = {"fresh_delay": res.fresh_delay,
                       "aged_delay": res.aged_delay,
                       "degradation": res.relative_degradation,
                       "max_shift": res.max_shift}
            store.save_result(circuit_fp, key, numbers)
        if not store.has_bundle(context.content_key()):
            context.save_to_store()
        _store_note(store)
    _print_age_report(circuit.name, profile, args.years, args.standby,
                      numbers)
    return 0


def cmd_mlv(args) -> int:
    """``mlv``: leakage/NBTI co-optimized standby vector."""
    from repro.flow import AnalysisPlatform
    circuit = resolve_circuit(args.circuit)
    profile = _profile_from(args)
    platform = AnalysisPlatform()
    report = platform.co_optimize(circuit, profile, years(args.years),
                                  n_vectors=args.vectors, seed=args.seed,
                                  max_set_size=args.set_size)
    chosen = report.selection.chosen
    bits = "".join(str(b) for b in chosen.bits)
    print(f"circuit            : {circuit.name}")
    print(f"chosen MLV         : {bits}")
    print(f"standby leakage    : {ua(chosen.leakage)} uA "
          f"({pct(report.leakage_reduction)} below expected)")
    print(f"aged degradation   : {pct(report.chosen_degradation)}")
    print(f"MLV set spread     : {pct(report.mlv_delay_spread, 3)} of delay")
    print(f"vectors evaluated  : {report.search.evaluated}")
    return 0


def cmd_sleep(args) -> int:
    """``sleep``: sleep-transistor sizing and aged gated timing."""
    from repro.sleep import (SleepStyle, design_sleep_transistor,
                             gated_lifetime_series, st_vth_shift)
    from repro.sta import AgingAnalyzer
    circuit = resolve_circuit(args.circuit)
    profile = _profile_from(args)
    style = SleepStyle(args.style)
    margin = st_vth_shift(args.vth_st, args.ras) if args.nbti_aware else 0.0
    design = design_sleep_transistor(circuit, style, args.beta,
                                     vth_st=args.vth_st, nbti_margin=margin)
    fresh = AgingAnalyzer().aged_timing(circuit, profile, 0.0).fresh_delay
    t0, t_end = gated_lifetime_series(circuit, design, profile,
                                      [0.0, years(args.years)])
    print(f"circuit        : {circuit.name}")
    print(f"style          : {style.value}, beta {pct(args.beta, 0)}"
          + (", NBTI-aware sizing" if args.nbti_aware else ""))
    print(f"(W/L)          : {design.aspect_ratio:.0f}")
    print(f"rail drop      : {mv(design.v_st)} mV (design), "
          f"{mv(t_end.v_st)} mV at {args.years:g} years")
    print(f"delay penalty  : {pct(t0.circuit_delay / fresh - 1)} at t=0, "
          f"{pct(t_end.circuit_delay / fresh - 1)} at {args.years:g} years")
    if style.has_header:
        print(f"header dVth    : {mv(t_end.st_delta_vth)} mV")
    return 0


def cmd_guardband(args) -> int:
    """``guardband``: device-level lifetime margin."""
    profile = _profile_from(args)
    gb = guard_band(profile, WORST_CASE_DEVICE, lifetime=years(args.years),
                    vth0=args.vth0)
    print(f"scenario: RAS {profile.ras_label()}, "
          f"{profile.t_active:.0f} K / {profile.t_standby:.0f} K, "
          f"Vth0 {args.vth0:g} V")
    print(gb.summary())
    return 0


def cmd_paths(args) -> int:
    """``paths``: K longest (optionally aged) paths."""
    from repro.sta import ALL_ZERO, AgingAnalyzer, enumerate_paths
    circuit = resolve_circuit(args.circuit)
    delta = None
    if args.aged:
        profile = _profile_from(args)
        delta = AgingAnalyzer().gate_shifts(circuit, profile,
                                            years(args.years),
                                            standby=ALL_ZERO)
    paths = enumerate_paths(circuit, args.k, delta_vth=delta)
    rows = []
    for i, path in enumerate(paths):
        first, last = path.nodes[0][0], path.nodes[-1][0]
        rows.append([i + 1, ns(path.delay), len(path.gates),
                     f"{first} -> {last}"])
    title = (f"{circuit.name}: {args.k} longest paths"
             + (" (aged)" if args.aged else " (fresh)"))
    print(format_table(["#", "delay (ns)", "gates", "endpoints"], rows,
                       title=title))
    return 0


def cmd_table4(args) -> int:
    """``table4``: internal-node-control potential sweep."""
    from repro.ivc import potential_sweep
    circuit = resolve_circuit(args.circuit)
    rows = potential_sweep(circuit, (330.0, 350.0, 370.0, 400.0),
                           ras=args.ras, t_total=years(args.years))
    printable = [[f"{r.t_standby:.0f} K", pct(r.worst_degradation),
                  pct(r.best_degradation), pct(r.potential, 1)]
                 for r in rows]
    print(format_table(
        ["T_standby", "worst-case", "best-case", "potential"], printable,
        title=f"{circuit.name}: internal-node-control potential "
              f"(RAS {args.ras}, {args.years:g} years)"))
    return 0


def cmd_sweep(args) -> int:
    """``sweep``: parallel leakage/NBTI co-optimization over circuits.

    With ``--shards N`` the sweep runs in deterministic round-robin
    shards checkpointed through ``--store``; a killed (or
    ``--max-shards``-limited) run resumes with ``--resume`` and the
    completed table is byte-identical to an uninterrupted run.
    """
    from repro.flow.parallel import (run_co_optimization_sweep,
                                     run_sharded_co_optimization_sweep)
    profile = _profile_from(args)
    for name in args.circuits:
        resolve_circuit(name)  # fail fast on unknown names
    store = None
    if getattr(args, "store", None):
        from repro.artifacts import ArtifactStore

        store = ArtifactStore(args.store)
    shards = getattr(args, "shards", None)
    if shards is not None:
        if store is None:
            print("error: --shards requires --store (checkpoints live "
                  "in the artifact store)", file=sys.stderr)
            return 2
        res = run_sharded_co_optimization_sweep(
            args.circuits, profile, years(args.years), store=store,
            n_shards=shards, resume=args.resume,
            max_shards_per_run=args.max_shards,
            n_vectors=args.vectors, max_set_size=args.set_size,
            seed=args.seed, max_workers=args.workers)
        _store_note(store)
        if not res.complete:
            print(f"sweep checkpointed: {len(res.completed_shards)}/"
                  f"{res.total_shards} shards done "
                  f"({len(res.ran_shards)} this run); re-run with "
                  f"--resume to continue", file=sys.stderr)
            return 0
        rows = res.rows
    else:
        rows = run_co_optimization_sweep(
            args.circuits, profile, years(args.years),
            n_vectors=args.vectors, max_set_size=args.set_size,
            seed=args.seed, max_workers=args.workers, store=store)
        if store is not None:
            _store_note(store)
    printable = [
        [r.name, ns(r.fresh_delay), pct(r.min_degradation),
         pct(r.mlv_diff, 3), pct(r.worst_degradation),
         pct(r.leakage_reduction), r.set_size, r.evaluated]
        for r in rows
    ]
    print(format_table(
        ["circuit", "delay (ns)", "min dDelay", "MLV diff",
         "worst-case", "leak saved", "|MLV set|", "evaluated"],
        printable,
        title=f"co-optimization sweep (RAS {profile.ras_label()}, "
              f"{profile.t_active:.0f} K / {profile.t_standby:.0f} K, "
              f"{args.years:g} years)"))
    return 0


def cmd_cache(args) -> int:
    """``cache``: inspect, pre-warm, or clear an artifact store."""
    from repro.artifacts import ArtifactStore

    store = ArtifactStore(args.store)
    if args.action == "info":
        info = store.info()
        print(f"store          : {info['root']}")
        print(f"schema version : {info['schema_version']}")
        print(f"bundles        : {info['bundles']}")
        print(f"results        : {info['results']}")
        print(f"runs           : {info['runs']}")
        print(f"size           : {info['bytes']} bytes")
        for key in info["bundle_keys"]:
            print(f"  {key}")
        return 0
    if args.action == "warm":
        from repro.context import AnalysisContext

        if not args.circuits:
            raise SystemExit("error: cache warm needs at least one circuit")
        for name in args.circuits:
            circuit = resolve_circuit(name)
            context = AnalysisContext(circuit, store=store)
            bundle = context.save_to_store()
            print(f"{name}: {bundle.bundle_key}")
        _store_note(store)
        return 0
    removed = store.clear()
    print(f"cleared {removed} file(s)")
    return 0


def _http_json(url: str, payload=None, timeout: float = 10.0):
    """One JSON request against the service; ``(status, document)``."""
    import json
    import urllib.error
    import urllib.request

    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            return exc.code, json.loads(exc.read().decode("utf-8"))
        except (ValueError, OSError):
            return exc.code, {"error": str(exc)}


def _render_served_result(doc) -> None:
    """Render a ``/result`` document exactly like ``repro age``."""
    from repro.serve import AgeScenario

    job = doc["job"]
    scenario = AgeScenario.from_dict(job["scenario"])
    _print_age_report(job["circuit_name"], scenario.profile(),
                      scenario.years, scenario.standby, doc["numbers"])


def cmd_serve(args) -> int:
    """``serve``: run the long-running analysis service.

    Blocks until SIGTERM/SIGINT, then drains gracefully (running jobs
    get ``--drain-grace`` seconds, then are requeued for the next
    server) and exits 0.
    """
    import json
    import os
    import signal
    import threading

    from repro.artifacts import ArtifactStore
    from repro.serve import ServeConfig, make_server

    config = ServeConfig(
        host=args.host, port=args.port, max_workers=args.workers,
        timeout_s=args.timeout, max_retries=args.retries,
        backoff_s=args.backoff, drain_grace_s=args.drain_grace,
        allow_faults=args.allow_faults)
    store = ArtifactStore(args.store)
    httpd = make_server(store, config)
    service = httpd.service
    recovered = service.start()
    host, port = httpd.server_address[:2]
    url = f"http://{host}:{port}"
    print(f"serving on {url} (store: {store.root}, "
          f"workers: {config.max_workers}, recovered: "
          f"{recovered['recovered']} orphaned / {recovered['queued']} "
          f"queued)", file=sys.stderr)

    stop = threading.Event()

    def _on_signal(signum, frame) -> None:
        print(f"signal {signum}: draining", file=sys.stderr)
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    server_thread = threading.Thread(target=httpd.serve_forever,
                                     name="repro-serve-http", daemon=True)
    server_thread.start()
    if args.ready_file:
        Path(args.ready_file).write_text(
            json.dumps({"url": url, "port": port, "pid": os.getpid()})
            + "\n", encoding="utf-8")
    stop.wait()
    service.stop(drain=True)
    httpd.shutdown()
    server_thread.join(timeout=10.0)
    counts = service.queue.counts()
    run_id = obs.record_run(store, service.metrics_report(),
                            command="repro serve")
    print(f"drained: {counts['done']} done, {counts['failed']} failed, "
          f"{counts['queued']} requeued", file=sys.stderr)
    print(f"run recorded: {run_id}", file=sys.stderr)
    return 0


def cmd_submit(args) -> int:
    """``submit``: send one aging query to a running service.

    Prints the job id and state; with ``--wait`` polls to completion
    and renders the result exactly like ``repro age``.
    """
    import time as _time

    scenario = {"ras": args.ras, "t_active": args.t_active,
                "t_standby": args.t_standby, "years": args.years,
                "standby": args.standby}
    status, doc = _http_json(f"{args.url}/submit",
                             payload={"circuit": args.circuit,
                                      "scenario": scenario})
    if status not in (200, 202):
        print(f"error: submit failed ({status}): "
              f"{doc.get('error', doc)}", file=sys.stderr)
        return 1
    job_id = doc["job_id"]
    print(f"job   : {job_id}", file=sys.stderr)
    print(f"state : {doc['state']}"
          + (" (cached)" if doc.get("cached") else ""), file=sys.stderr)
    if not args.wait:
        print(job_id)
        return 0
    deadline = _time.monotonic() + args.wait_timeout
    while _time.monotonic() < deadline:
        status, doc = _http_json(f"{args.url}/status/{job_id}")
        if status == 200 and doc["state"] in ("done", "failed"):
            break
        _time.sleep(args.poll)
    else:
        print(f"error: job {job_id} still {doc.get('state', '?')!r} "
              f"after {args.wait_timeout:g}s", file=sys.stderr)
        return 1
    return _fetch_result(args.url, job_id, as_json=False)


def _fetch_result(url: str, job_id: str, *, as_json: bool) -> int:
    import json

    status, doc = _http_json(f"{url}/result/{job_id}")
    if status == 404:
        print(f"error: unknown job {job_id!r}", file=sys.stderr)
        return 2
    if status == 202:
        print(f"job {job_id} is {doc['status']}; try again later",
              file=sys.stderr)
        return 3
    if status != 200:
        print(f"error: job {job_id} failed: "
              f"{json.dumps(doc.get('error'))}", file=sys.stderr)
        return 1
    if as_json:
        print(json.dumps(doc["numbers"], indent=2, sort_keys=True))
    else:
        _render_served_result(doc)
    return 0


def cmd_result(args) -> int:
    """``result``: fetch (and render) one job's numbers.

    Exit codes: 0 done, 1 failed, 2 unknown job, 3 still pending.
    """
    return _fetch_result(args.url, args.job_id, as_json=args.json)


def _report_store(args):
    """The optional artifact store backing ``repro report`` actions."""
    store_dir = getattr(args, "store", None)
    if not store_dir:
        return None
    from repro.artifacts import ArtifactStore

    return ArtifactStore(store_dir)


def cmd_report_history(args) -> int:
    """``report history``: list the run records stored under ``runs/``."""
    store = _report_store(args)
    records = obs.load_history(store)
    if args.limit is not None:
        records = records[-args.limit:]
    if args.ids:
        for record in records:
            print(record.get("run_id", "?"))
        return 0
    if not records:
        print("no recorded runs", file=sys.stderr)
        return 0
    rows = []
    for record in records:
        row = obs.summarize_record(record)
        rows.append([row["run_id"], row["recorded_at"],
                     row["command"] or row["label"],
                     row["host"], row["git_rev"] or "-",
                     f"{row['wall_seconds']:.3f}", row["spans"]])
    print(format_table(
        ["run id", "recorded (UTC)", "command", "host", "git rev",
         "wall (s)", "spans"], rows,
        title=f"run history: {store.root}"))
    return 0


def cmd_report_diff(args) -> int:
    """``report diff``: compare two RunReports under tolerance bands.

    Inputs are file paths, ``-`` (stdin), or (with ``--store``) stored
    run ids / unique id prefixes.  Exit codes: 0 the diff passes, 1 at
    least one regression (the CI gate), 2 an input failed to resolve.
    """
    import json

    store = _report_store(args)
    try:
        doc_a, label_a = obs.resolve_report(args.run_a, store=store)
        doc_b, label_b = obs.resolve_report(args.run_b, store=store)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tolerance = obs.Tolerance(span_rel=args.span_rel,
                              span_abs_s=args.span_abs,
                              fail_on_added=args.fail_on_added)
    diff = obs.diff_reports(doc_a, doc_b, tolerance=tolerance,
                            label_a=label_a, label_b=label_b)
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(obs.format_diff(diff, verbose=args.all))
    return 0 if diff.passed else 1


def cmd_report_timeline(args) -> int:
    """``report timeline``: span trace -> Chrome ``trace_event`` JSON.

    Accepts a ``--trace`` JSONL file, a ``--metrics`` RunReport, a
    stored run id (with ``--store``), or ``-`` for stdin; the output
    loads in Perfetto / ``chrome://tracing`` with pool and serve
    workers on their own pid lanes.
    """
    import json

    store = _report_store(args)
    try:
        if (store is not None and args.input != "-"
                and not Path(args.input).exists()):
            report_doc, _ = obs.resolve_report(args.input, store=store)
            trace = obs.convert(json.dumps(report_doc))
        else:
            trace = obs.convert_file(args.input)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    text = json.dumps(trace, indent=1) + "\n"
    if args.out and args.out != "-":
        Path(args.out).write_text(text, encoding="utf-8")
        events = len(trace.get("traceEvents", []))
        print(f"wrote {args.out} ({events} events)", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_table1(args) -> int:
    """``table1``: the paper's Table 1 dVth grid."""
    rows = []
    ras_list = ("9:1", "5:1", "1:1", "1:5", "1:9")
    for tst in (330.0, 350.0, 370.0, 400.0):
        row = [f"{tst:.0f} K"]
        for ras in ras_list:
            profile = OperatingProfile.from_ras(ras, t_standby=tst)
            dv = DEFAULT_MODEL.worst_case_shift(profile, years(args.years),
                                                args.vth0)
            row.append(f"{dv * 1e3:6.2f}")
        rows.append(row)
    print(format_table(["T_standby \\ RAS"] + list(ras_list), rows,
                       title=f"dVth (mV) after {args.years:g} years, "
                             f"T_active = 400 K"))
    return 0


def _add_obs_args(parser: argparse.ArgumentParser, *,
                  suppress: bool = False) -> None:
    """The global observability/verbosity flags.

    Added once to the root parser (real defaults) and once per
    subcommand with ``default=argparse.SUPPRESS`` — an absent
    post-subcommand flag then leaves the root-parsed value alone, so
    both ``repro --trace f age c17`` and ``repro age c17 --trace f``
    work.  The ``-v`` count action *increments* whatever the root
    already counted, so ``repro -v age c17 -v`` means ``-vv``.
    """
    kw = {"default": argparse.SUPPRESS} if suppress else {}
    parser.add_argument("--trace", metavar="FILE",
                        **(kw or {"default": None}),
                        help="write a span trace (JSONL) to FILE")
    parser.add_argument("--metrics", metavar="FILE",
                        **(kw or {"default": None}),
                        help="write a RunReport (JSON) to FILE")
    parser.add_argument("-v", "--verbose", action="count",
                        **(kw or {"default": 0}),
                        help="log progress (-v info, -vv debug)")


def _configure_logging(verbose: int) -> None:
    """Attach a stderr handler to the ``repro`` logger per ``-v`` count."""
    if not verbose:
        return
    level = logging.INFO if verbose == 1 else logging.DEBUG
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(
        "%(levelname)s %(name)s: %(message)s"))
    root = logging.getLogger("repro")
    root.addHandler(handler)
    root.setLevel(level)


#: Subcommands whose ``--store`` runs are filed into run history.
_RECORDED_COMMANDS = ("age", "sweep")


def _run_observed(args) -> int:
    """Run the selected subcommand, collecting and writing observability.

    With ``--trace`` or ``--metrics``, installs a real tracer (which is
    the collection-active switch for metrics and cache-stats too), runs
    the command under a root ``repro.<command>`` span, and writes the
    requested artifacts; otherwise calls straight through on the no-op
    path.  ``age``/``sweep`` with ``--store`` always collect: their
    RunReport is filed into the store's ``runs/`` history (a stderr
    note only — stdout stays byte-identical to an untraced run).
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    record_dir = (getattr(args, "store", None)
                  if args.command in _RECORDED_COMMANDS else None)
    if not trace_path and not metrics_path and not record_dir:
        return args.func(args)
    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    captured: List[dict] = []
    with obs.use_tracer(tracer), obs.use_metrics(registry), \
            obs.cache_scope(captured):
        with obs.span(f"repro.{args.command}"):
            code = args.func(args)
    if trace_path:
        tracer.write_jsonl(trace_path)
    if metrics_path or record_dir:
        report = obs.RunReport(f"repro {args.command}",
                               spans=tracer.span_dicts(),
                               metrics=registry.snapshot(),
                               cache_stats=captured)
        if metrics_path:
            report.write(metrics_path)
        if record_dir and code == 0:
            # A fresh store handle: constructed outside the scope
            # above so its CacheStats never leak into the report.
            from repro.artifacts import ArtifactStore

            run_id = obs.record_run(ArtifactStore(record_dir), report,
                                    command=f"repro {args.command}")
            print(f"run recorded: {run_id}", file=sys.stderr)
    return code


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Temperature-aware NBTI analysis (Wang et al. "
                    "DATE'07/TDSC'11 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    _add_obs_args(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="netlist statistics")
    p.add_argument("circuit")
    _add_obs_args(p, suppress=True)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("age", help="temperature-aware aged timing")
    p.add_argument("circuit")
    _add_profile_args(p)
    p.add_argument("--standby", choices=("worst", "best"), default="worst",
                   help="bounding standby state (default worst)")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="persistent artifact store: hydrate compiled "
                        "bundles and cache the result")
    _add_obs_args(p, suppress=True)
    p.set_defaults(func=cmd_age)

    p = sub.add_parser("mlv", help="leakage/NBTI co-optimized standby vector")
    p.add_argument("circuit")
    _add_profile_args(p)
    p.add_argument("--vectors", type=int, default=48,
                   help="vectors per search round (default 48)")
    p.add_argument("--set-size", type=int, default=6,
                   help="MLV set size (default 6)")
    p.add_argument("--seed", type=int, default=0)
    _add_obs_args(p, suppress=True)
    p.set_defaults(func=cmd_mlv)

    p = sub.add_parser("sleep", help="sleep-transistor sizing + aged timing")
    p.add_argument("circuit")
    _add_profile_args(p)
    p.add_argument("--beta", type=float, default=0.05,
                   help="delay-penalty budget (default 0.05)")
    p.add_argument("--style", choices=[s.value for s in
                                       __import__("repro.sleep",
                                                  fromlist=["SleepStyle"]
                                                  ).SleepStyle],
                   default="header")
    p.add_argument("--vth-st", type=float, default=0.22, dest="vth_st")
    p.add_argument("--nbti-aware", action="store_true",
                   help="apply the eq. 31 end-of-life upsizing")
    _add_obs_args(p, suppress=True)
    p.set_defaults(func=cmd_sleep)

    p = sub.add_parser("guardband", help="device-level lifetime guard-band")
    _add_profile_args(p)
    p.add_argument("--vth0", type=float, default=0.22)
    _add_obs_args(p, suppress=True)
    p.set_defaults(func=cmd_guardband)

    p = sub.add_parser("table1", help="print the paper's Table 1 grid")
    p.add_argument("--years", type=float, default=10.0)
    p.add_argument("--vth0", type=float, default=0.22)
    _add_obs_args(p, suppress=True)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("paths", help="K longest (optionally aged) paths")
    p.add_argument("circuit")
    p.add_argument("-k", type=int, default=10, help="paths to list")
    p.add_argument("--aged", action="store_true",
                   help="rank by 10-year aged delay")
    _add_profile_args(p)
    _add_obs_args(p, suppress=True)
    p.set_defaults(func=cmd_paths)

    p = sub.add_parser("table4", help="internal-node-control potential sweep")
    p.add_argument("circuit")
    p.add_argument("--ras", default="1:9")
    p.add_argument("--years", type=float, default=10.0)
    _add_obs_args(p, suppress=True)
    p.set_defaults(func=cmd_table4)

    p = sub.add_parser("generate",
                       help="emit a seeded synthetic .bench netlist")
    p.add_argument("out", help="output .bench path")
    p.add_argument("--gates", type=int, required=True,
                   help="target gate count (array engine: O(gates))")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--inputs", type=int, default=None,
                   help="primary inputs (default: scale profile, "
                        "~sqrt(gates))")
    p.add_argument("--outputs", type=int, default=None,
                   help="primary outputs (default: inputs // 4)")
    p.add_argument("--name", default=None,
                   help="circuit name (default: derived from gates/seed)")
    _add_obs_args(p, suppress=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("sweep",
                       help="co-optimize many circuits in parallel")
    p.add_argument("circuits", nargs="+",
                   help="circuits to sweep (one worker process each)")
    _add_profile_args(p)
    p.add_argument("--vectors", type=int, default=48,
                   help="vectors per search round (default 48)")
    p.add_argument("--set-size", type=int, default=6,
                   help="MLV set size (default 6)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: one per circuit, "
                        "capped at the CPU count; 1 = serial)")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="persistent artifact store for the shipped "
                        "compiled bundles")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="split the sweep into N resumable shards "
                        "checkpointed through --store")
    p.add_argument("--resume", action="store_true",
                   help="resume a sharded sweep from its checkpoints")
    p.add_argument("--max-shards", type=int, default=None, metavar="M",
                   help="run at most M pending shards, checkpoint, "
                        "and exit (resume later with --resume)")
    _add_obs_args(p, suppress=True)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("cache",
                       help="inspect/warm/clear a persistent artifact store")
    p.add_argument("action", choices=("info", "warm", "clear"))
    p.add_argument("circuits", nargs="*",
                   help="circuits to pre-warm (for 'warm')")
    p.add_argument("--store", metavar="DIR", required=True,
                   help="artifact store directory")
    _add_obs_args(p, suppress=True)
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("serve",
                       help="run the long-running analysis service")
    p.add_argument("--store", metavar="DIR", required=True,
                   help="artifact store backing the job queue and "
                        "result cache")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="bind port (default 0 = ephemeral)")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent worker processes (default 2)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="per-job wall-time limit in seconds "
                        "(default 300)")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget per job (default 2)")
    p.add_argument("--backoff", type=float, default=0.05,
                   help="base retry backoff in seconds, doubled per "
                        "attempt (default 0.05)")
    p.add_argument("--drain-grace", type=float, default=5.0,
                   help="seconds running jobs get to finish on "
                        "SIGTERM before requeue (default 5)")
    p.add_argument("--allow-faults", action="store_true",
                   help="honor job-record fault hooks (testing only)")
    p.add_argument("--ready-file", metavar="FILE", default=None,
                   help="write {url, port, pid} JSON here once "
                        "accepting requests")
    _add_obs_args(p, suppress=True)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit",
                       help="send one aging query to a running service")
    p.add_argument("circuit")
    _add_profile_args(p)
    p.add_argument("--standby", choices=("worst", "best"), default="worst",
                   help="bounding standby state (default worst)")
    p.add_argument("--url", required=True,
                   help="service base URL (e.g. http://127.0.0.1:8434)")
    p.add_argument("--wait", action="store_true",
                   help="poll to completion and render the result")
    p.add_argument("--wait-timeout", type=float, default=120.0,
                   help="give up waiting after this many seconds "
                        "(default 120)")
    p.add_argument("--poll", type=float, default=0.2,
                   help="poll interval while waiting (default 0.2s)")
    _add_obs_args(p, suppress=True)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("result",
                       help="fetch (and render) a submitted job's numbers")
    p.add_argument("job_id")
    p.add_argument("--url", required=True,
                   help="service base URL (e.g. http://127.0.0.1:8434)")
    p.add_argument("--json", action="store_true",
                   help="print the raw numbers JSON instead of the "
                        "age report")
    _add_obs_args(p, suppress=True)
    p.set_defaults(func=cmd_result)

    p = sub.add_parser("report",
                       help="run history, report diffing, trace timelines")
    rsub = p.add_subparsers(dest="report_action", required=True)

    rp = rsub.add_parser("history",
                         help="list run records stored under runs/")
    rp.add_argument("--store", metavar="DIR", required=True,
                    help="artifact store holding the run history")
    rp.add_argument("--limit", type=int, default=None, metavar="N",
                    help="show only the newest N runs")
    rp.add_argument("--ids", action="store_true",
                    help="print bare run ids (oldest first)")
    _add_obs_args(rp, suppress=True)
    rp.set_defaults(func=cmd_report_history)

    rp = rsub.add_parser("diff",
                         help="compare two RunReports (the perf gate)")
    rp.add_argument("run_a", help="baseline: file, run id, or '-'")
    rp.add_argument("run_b", help="candidate: file, run id, or '-'")
    rp.add_argument("--store", metavar="DIR", default=None,
                    help="resolve run ids against this store")
    rp.add_argument("--span-rel", type=float, default=0.5,
                    help="relative span slowdown tolerated "
                         "(default 0.5 = +50%%)")
    rp.add_argument("--span-abs", type=float, default=0.02,
                    metavar="SECONDS",
                    help="absolute span slowdown tolerated "
                         "(default 0.02 s)")
    rp.add_argument("--fail-on-added", action="store_true",
                    help="treat spans new in B as regressions too")
    rp.add_argument("--json", action="store_true",
                    help="emit the full diff document as JSON")
    rp.add_argument("--all", action="store_true",
                    help="list unchanged entries too")
    _add_obs_args(rp, suppress=True)
    rp.set_defaults(func=cmd_report_diff)

    rp = rsub.add_parser("timeline",
                         help="span trace -> Chrome trace_event JSON "
                              "(Perfetto)")
    rp.add_argument("input",
                    help="trace JSONL, RunReport JSON, stored run id, "
                         "or '-' for stdin")
    rp.add_argument("-o", "--out", default=None, metavar="FILE",
                    help="output path (default stdout)")
    rp.add_argument("--store", metavar="DIR", default=None,
                    help="resolve run ids against this store")
    _add_obs_args(rp, suppress=True)
    rp.set_defaults(func=cmd_report_timeline)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(getattr(args, "verbose", 0))
    try:
        return _run_observed(args)
    except BrokenPipeError:
        # Downstream closed the pipe (`repro report history | head`):
        # stop quietly instead of tracebacking.  Stdout is re-pointed
        # at devnull so interpreter shutdown does not re-raise.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
