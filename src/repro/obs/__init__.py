"""Zero-dependency observability: tracing, metrics, and run reports.

The instrumentation layer of the analysis stack (PR 5 of the roadmap's
"production-scale system" arc).  Three pieces, all stdlib-only:

* :mod:`repro.obs.trace` — nested wall-time spans via context managers
  and the :func:`traced` decorator, exported as JSONL or nested dicts.
* :mod:`repro.obs.metrics` — typed counters and histograms (kernel
  invocations, batch sizes, engine selection, compile vs evaluate
  time) with deterministic snapshot/merge semantics.
* :mod:`repro.obs.report` — the :class:`RunReport` document merging
  span trees, metric snapshots, and per-context
  :class:`~repro.context.CacheStats` into one schema-validated JSON,
  plus the Prometheus text exposition of that document.
* :mod:`repro.obs.perf` — the run-history plane: RunReports wrapped in
  host/git/command envelopes and persisted to the artifact store's
  ``runs/`` namespace for comparison over time.
* :mod:`repro.obs.diff` — report diffing with tolerance bands: aligns
  spans/metrics/cache stats across two runs and emits a pass/fail
  regression verdict (the CI perf gate).
* :mod:`repro.obs.timeline` — span traces as Chrome ``trace_event``
  JSON, loadable in Perfetto with pool/serve workers on their own
  pid lanes.

Collection is **off by default** and near-free while off: the
module-level :func:`span` / :func:`count` / :func:`observe` helpers
no-op after a single identity check against the :data:`NULL_TRACER`
singleton (``benchmarks/test_perf_obs.py`` asserts the disabled
overhead stays under 2 % of the headline aging benchmark).  Enable by
installing a tracer::

    from repro import obs

    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    captured = []
    with obs.use_tracer(tracer), obs.use_metrics(registry), \\
            obs.cache_scope(captured):
        platform.co_optimize(circuit, profile, TEN_YEARS)

    report = obs.RunReport("my run", spans=tracer.span_dicts(),
                           metrics=registry.snapshot(),
                           cache_stats=captured)
    report.write("report.json")

or pass ``--trace FILE`` / ``--metrics FILE`` to any CLI subcommand.
See docs/OBSERVABILITY.md for the span taxonomy and report schema.
"""

from repro.obs.diff import (
    DiffEntry,
    ReportDiff,
    Tolerance,
    canonical_json,
    canonicalize_report,
    diff_reports,
    format_diff,
    span_totals,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    count,
    gauge,
    get_metrics,
    observe,
    set_metrics,
    use_metrics,
)
from repro.obs.perf import (
    RUN_SCHEMA,
    git_rev,
    history_line,
    host_fingerprint,
    load_history,
    make_run_record,
    new_run_id,
    record_run,
    resolve_report,
    summarize_record,
)
from repro.obs.report import (
    REPORT_SCHEMA,
    SCHEMA_VERSION,
    RunReport,
    cache_scope,
    register_cache_snapshot,
    register_cache_stats,
    reset_cache_registry,
    schema_errors,
    snapshot_cache_stats,
    to_prometheus,
    validate_report,
)
from repro.obs.timeline import chrome_trace, convert, convert_file
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    annotate,
    get_tracer,
    set_tracer,
    span,
    traced,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    "Span", "Tracer", "NullTracer", "NULL_TRACER",
    "span", "annotate", "traced",
    "get_tracer", "set_tracer", "use_tracer", "tracing_enabled",
    "Counter", "Histogram", "Gauge", "MetricsRegistry",
    "count", "observe", "gauge",
    "get_metrics", "set_metrics", "use_metrics",
    "RunReport", "REPORT_SCHEMA", "SCHEMA_VERSION",
    "schema_errors", "validate_report", "to_prometheus",
    "register_cache_stats", "register_cache_snapshot",
    "snapshot_cache_stats", "cache_scope", "reset_cache_registry",
    "RUN_SCHEMA", "host_fingerprint", "git_rev", "new_run_id",
    "make_run_record", "record_run", "resolve_report",
    "summarize_record", "load_history", "history_line",
    "Tolerance", "DiffEntry", "ReportDiff", "diff_reports",
    "format_diff", "span_totals", "canonicalize_report",
    "canonical_json",
    "chrome_trace", "convert", "convert_file",
]
