"""Tests for process variation and statistical aging (Fig. 12)."""

import random

import numpy as np
import pytest

from repro.constants import TEN_YEARS, years
from repro.core import OperatingProfile
from repro.netlist import random_logic
from repro.sta import analyze
from repro.variation import (
    FIG12_TIMES,
    FastAgedTimer,
    StatisticalAgingResult,
    VariationModel,
    statistical_aging,
)


@pytest.fixture(scope="module")
def circuit():
    return random_logic("var", n_inputs=16, n_outputs=4, n_gates=150, seed=12)


PROFILE = OperatingProfile.from_ras("1:9", t_standby=400.0)


class TestVariationModel:
    def test_deterministic(self, circuit):
        m = VariationModel(sigma_local=0.01)
        assert m.sample_many(circuit, 3, seed=5) == m.sample_many(circuit, 3, seed=5)

    def test_zero_sigma_zero_offsets(self, circuit):
        m = VariationModel(sigma_local=0.0, sigma_global=0.0)
        offsets = m.sample(circuit, random.Random(1))
        assert set(offsets.values()) == {0.0}

    def test_global_component_shared(self, circuit):
        m = VariationModel(sigma_local=0.0, sigma_global=0.02)
        offsets = m.sample(circuit, random.Random(3))
        assert len(set(offsets.values())) == 1

    def test_local_component_independent(self, circuit):
        m = VariationModel(sigma_local=0.02, sigma_global=0.0)
        offsets = m.sample(circuit, random.Random(3))
        assert len(set(offsets.values())) > 1

    def test_truncation(self, circuit):
        m = VariationModel(sigma_local=0.01, truncate_sigmas=2.0)
        offsets = m.sample_many(circuit, 50, seed=0)
        for sample in offsets:
            assert all(abs(v) <= 0.02 + 1e-12 for v in sample.values())

    def test_empirical_sigma(self, circuit):
        m = VariationModel(sigma_local=0.015)
        samples = m.sample_many(circuit, 40, seed=2)
        values = np.array([v for s in samples for v in s.values()])
        assert values.std() == pytest.approx(0.015, rel=0.15)

    def test_guards(self):
        with pytest.raises(ValueError):
            VariationModel(sigma_local=-0.01)
        with pytest.raises(ValueError):
            VariationModel(truncate_sigmas=0.0)
        with pytest.raises(ValueError):
            VariationModel().sample_many(random_logic("x", 4, 1, 20, seed=1), 0)


class TestChunkedSampling:
    """iter_sample_matrix: streamed chunks == the one-shot matrix."""

    @pytest.mark.parametrize("chunk", [1, 2, 5, 8, 37, 100])
    def test_chunks_bit_identical_to_one_shot(self, circuit, chunk):
        m = VariationModel(sigma_local=0.012, sigma_global=0.004)
        full = m.sample_matrix(circuit, 23, seed=9)
        for s0, part in m.iter_sample_matrix(circuit, 23, seed=9,
                                             chunk_samples=chunk):
            assert np.array_equal(part, full[:, s0:s0 + part.shape[1]])

    def test_odd_per_die_realigns_chunk(self, circuit):
        # sigma_global only: one draw per die, so an odd chunk would cut
        # a Box-Muller pair in half; the iterator rounds the chunk up.
        m = VariationModel(sigma_local=0.0, sigma_global=0.02)
        full = m.sample_matrix(circuit, 17, seed=4)
        for chunk in (1, 3, 11):
            got = np.hstack([part for _, part in m.iter_sample_matrix(
                circuit, 17, seed=4, chunk_samples=chunk)])
            assert np.array_equal(got, full)

    def test_gate_order_permutation(self, circuit):
        m = VariationModel(sigma_local=0.01)
        order = sorted(circuit.gates)
        full = m.sample_matrix(circuit, 6, seed=2, gate_order=order)
        got = np.hstack([part for _, part in m.iter_sample_matrix(
            circuit, 6, seed=2, chunk_samples=4, gate_order=order)])
        assert np.array_equal(got, full)

    def test_zero_sigma_streams_zeros(self, circuit):
        m = VariationModel(sigma_local=0.0, sigma_global=0.0)
        chunks = list(m.iter_sample_matrix(circuit, 5, seed=0,
                                           chunk_samples=2))
        assert sum(part.shape[1] for _, part in chunks) == 5
        assert all(not part.any() for _, part in chunks)

    def test_guards(self, circuit):
        m = VariationModel()
        with pytest.raises(ValueError):
            list(m.iter_sample_matrix(circuit, 0, chunk_samples=4))
        with pytest.raises(ValueError):
            list(m.iter_sample_matrix(circuit, 4, chunk_samples=0))
        with pytest.raises(ValueError):
            list(m.iter_sample_matrix(circuit, 4, chunk_samples=2,
                                      gate_order=["nope"]))


class TestMemoryBudget:
    """statistical_aging results are independent of the MC budget."""

    def test_budget_does_not_change_results(self, circuit):
        kwargs = dict(times=(0.0, TEN_YEARS), n_samples=12, seed=3,
                      engine="compiled")
        base = statistical_aging(circuit, PROFILE, **kwargs)
        tiny = statistical_aging(circuit, PROFILE, memory_budget=1, **kwargs)
        assert np.array_equal(base.delays, tiny.delays)

    def test_chunk_sizer(self):
        from repro.variation.statistical import _mc_chunk_samples

        # 256 MiB over 80-byte-per-gate rows; never below 1 sample and
        # never above the requested population.
        assert _mc_chunk_samples(1000, 10_000, 256 * 2**20) == 3355
        assert _mc_chunk_samples(10**9, 100, 256 * 2**20) == 1
        assert _mc_chunk_samples(10, 4, 256 * 2**20) == 4


class TestFastTimer:
    def test_matches_full_sta_fresh(self, circuit):
        timer = FastAgedTimer(circuit)
        assert timer.circuit_delay() == pytest.approx(
            analyze(circuit).circuit_delay, rel=1e-12)

    def test_matches_full_sta_aged(self, circuit):
        timer = FastAgedTimer(circuit)
        shifts = {g: 0.001 * (i % 5) for i, g in enumerate(circuit.gates)}
        assert timer.circuit_delay(shifts) == pytest.approx(
            analyze(circuit, delta_vth=shifts).circuit_delay, rel=1e-12)

    def test_negative_shift_speeds_up(self, circuit):
        timer = FastAgedTimer(circuit)
        fast = timer.circuit_delay({g: -0.01 for g in circuit.gates})
        assert fast < timer.circuit_delay()


class TestStatisticalAging:
    def test_result_shape(self, circuit):
        res = statistical_aging(circuit, PROFILE, n_samples=20, seed=3)
        assert res.delays.shape == (len(FIG12_TIMES), 20)
        assert len(res.times) == len(FIG12_TIMES)

    def test_deterministic(self, circuit):
        a = statistical_aging(circuit, PROFILE, n_samples=10, seed=7)
        b = statistical_aging(circuit, PROFILE, n_samples=10, seed=7)
        np.testing.assert_array_equal(a.delays, b.delays)

    def test_mean_delay_grows_with_age(self, circuit):
        res = statistical_aging(circuit, PROFILE, n_samples=30, seed=1)
        means = res.mean()
        assert means[0] < means[1] < means[2]

    def test_fig12_aging_dominates_variation(self, circuit):
        """mu - 3 sigma at 3 years exceeds mu + 3 sigma fresh."""
        res = statistical_aging(circuit, PROFILE,
                                times=(0.0, years(3.0)),
                                n_samples=60, seed=4)
        assert res.aging_dominates_variation(fresh_index=0, aged_index=1)

    def test_variance_compression(self, circuit):
        """[51]: aging compresses the delay spread (low-Vth devices age
        faster)."""
        res = statistical_aging(circuit, PROFILE, n_samples=80, seed=5)
        assert res.variance_compression() < 1.0

    def test_three_sigma_bounds_ordered(self, circuit):
        res = statistical_aging(circuit, PROFILE, n_samples=30, seed=6)
        assert np.all(res.lower_3sigma() <= res.mean())
        assert np.all(res.mean() <= res.upper_3sigma())

    def test_sample_guard(self, circuit):
        with pytest.raises(ValueError):
            statistical_aging(circuit, PROFILE, n_samples=1)

    def test_quantiles_ordered(self, circuit):
        res = statistical_aging(circuit, PROFILE, n_samples=40, seed=9)
        assert res.quantile(0.1) <= res.quantile(0.5) <= res.quantile(0.9)
        with pytest.raises(ValueError):
            res.quantile(1.5)

    def test_normal_fit_reasonable(self, circuit):
        res = statistical_aging(circuit, PROFILE, n_samples=80, seed=10)
        mu, sigma, pvalue = res.fit_normal(index=0)
        assert mu == pytest.approx(res.mean()[0])
        assert sigma == pytest.approx(res.std()[0], rel=0.05)
        # Sum of many per-gate offsets: comfortably Gaussian.
        assert pvalue > 0.01

    def test_normal_fit_degenerate_sample(self, circuit):
        res = statistical_aging(circuit, PROFILE, n_samples=5,
                                variation=VariationModel(sigma_local=0.0),
                                seed=11)
        mu, sigma, pvalue = res.fit_normal(index=0)
        assert sigma == pytest.approx(0.0, abs=1e-18)
        assert pvalue == 1.0

    def test_zero_variation_degenerate(self, circuit):
        res = statistical_aging(circuit, PROFILE, n_samples=5,
                                variation=VariationModel(sigma_local=0.0),
                                seed=8)
        # Identical dies: spread is numerical noise only.
        assert np.all(res.std() < 1e-20)
