"""Construction-time validation and edge cases of the Cell data model."""

import pytest

from repro.cells import Cell, Dev, Series, Stage, build_library
from repro.tech import PTM90, Mosfet


def _nmos(pin, name="MN1", w=240e-9):
    return Dev(Mosfet(name=name, polarity="nmos", gate_pin=pin, w=w, l=90e-9))


def _pmos(pin, name="MP1", w=480e-9):
    return Dev(Mosfet(name=name, polarity="pmos", gate_pin=pin, w=w, l=90e-9))


def inverter_stage(out="Y"):
    return Stage(output=out, pull_up=_pmos("A"), pull_down=_nmos("A"))


class TestStage:
    def test_input_pins_deduplicated_in_order(self):
        stage = Stage(output="Y",
                      pull_up=Series([_pmos("B", "MP1"), _pmos("A", "MP2")]),
                      pull_down=Series([_nmos("A", "MN1"), _nmos("B", "MN2")]))
        assert stage.input_pins() == ["B", "A"]

    def test_non_complementary_detected(self):
        # Pull-up and pull-down both keyed the same way: floats/shorts.
        broken = Stage(output="Y", pull_up=_pmos("A"), pull_down=_nmos("B"))
        with pytest.raises(RuntimeError, match="not complementary"):
            broken.evaluate({"A": 0, "B": 1})  # both networks conduct


class TestCellValidation:
    def test_needs_stages(self):
        with pytest.raises(ValueError, match="at least one stage"):
            Cell(name="X", inputs=("A",), output="Y", stages=())

    def test_last_stage_must_drive_output(self):
        with pytest.raises(ValueError, match="declared output"):
            Cell(name="X", inputs=("A",), output="Y",
                 stages=(inverter_stage(out="Z"),))

    def test_undriven_stage_pin_rejected(self):
        stage = Stage(output="Y", pull_up=_pmos("GHOST"),
                      pull_down=_nmos("GHOST"))
        with pytest.raises(ValueError, match="undriven"):
            Cell(name="X", inputs=("A",), output="Y", stages=(stage,))

    def test_truth_table_size(self):
        lib = build_library()
        assert len(lib.get("NAND3").truth_table()) == 8
        assert len(lib.get("AOI22").truth_table()) == 16

    def test_node_values_exposes_internals(self):
        lib = build_library()
        and2 = lib.get("AND2")
        values = and2.node_values((1, 1))
        assert values["n1"] == 0   # internal NAND
        assert values["Y"] == 1

    def test_library_duplicate_add_rejected(self):
        lib = build_library()
        with pytest.raises(ValueError, match="duplicate"):
            lib.add(lib.get("INV"))

    def test_internal_load_parameter_affects_composed_cells(self):
        lib = build_library()
        and2 = lib.get("AND2")
        light = and2.delay(PTM90, 4e-15, "rise", internal_load_cap=1e-16)
        heavy = and2.delay(PTM90, 4e-15, "rise", internal_load_cap=8e-16)
        assert heavy > light

    def test_pmos_devices_counts(self):
        lib = build_library()
        assert len(lib.get("NAND3").pmos_devices()) == 3
        assert len(lib.get("AND2").pmos_devices()) == 3  # NAND2 + INV
        assert len(lib.get("XOR2").pmos_devices()) == 8  # 4 NAND2s
