"""Sleep-transistor sizing under NBTI (paper Sec. 4.4.1, eqs. 25-31).

The gate-delay penalty of a sleep transistor comes from the virtual-rail
drop ``V_ST`` (eq. 26).  Bounding the penalty by ``beta`` (the paper's
5 %) bounds the drop (eq. 28):

    V_ST < beta * (Vdd - Vth_low)

and the triode current balance (eq. 29) then fixes the ST size (eq. 30):

    (W/L)_ST > I_ON / (k_p (Vdd - Vth_ST) V_ST)

A PMOS header is itself NBTI-stressed whenever the circuit is active, so
its threshold drifts and the same I_ON needs more size (eq. 31):

    (W/L)_ST/NBTI = (1 + dVth / (Vdd - Vth_ST - dVth)) * (W/L)_ST

This module reproduces Fig. 8 (ST dVth vs initial Vth x RAS) and Fig. 9
(the corresponding Delta(W/L)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constants import TEN_YEARS
from repro.core.aging import DEFAULT_MODEL, NbtiModel
from repro.core.profiles import OperatingProfile
from repro.tech.ptm import PTM90, Technology

#: Triode-region transconductance of the PMOS header, A/V^2 per square
#: (folds mu_p * Cox in eq. 29).
K_TRIODE_P = 2.5e-4


def max_virtual_rail_drop(beta: float, tech: Technology = PTM90) -> float:
    """Eq. (28): the largest V_ST that keeps the delay penalty under
    ``beta`` (e.g. 0.05 for the paper's 5 %).

    The Taylor expansion of eq. (26) gives ``dD/D = alpha * V_ST /
    (Vdd - Vth_low)``; the paper writes the alpha = 1 form, so we divide
    by the technology's velocity-saturation index to honour the *intent*
    (a beta-bounded delay penalty) at our alpha.
    """
    if not 0.0 < beta < 1.0:
        raise ValueError("beta must be in (0, 1)")
    return beta * (tech.vdd - tech.nmos.vth0) / tech.alpha


def st_aspect_ratio(i_on: float, v_st: float, vth_st: float,
                    tech: Technology = PTM90) -> float:
    """Eq. (30): minimum (W/L) of the PMOS header for ``i_on`` amperes."""
    if i_on <= 0:
        raise ValueError("block current must be positive")
    if v_st <= 0:
        raise ValueError("virtual-rail drop must be positive")
    overdrive = tech.vdd - vth_st
    if overdrive <= 0:
        raise ValueError("sleep transistor has no overdrive")
    return i_on / (K_TRIODE_P * overdrive * v_st)


def st_vth_shift(vth_st: float, ras: str, t_total: float = TEN_YEARS,
                 t_active: float = 400.0, t_standby: float = 330.0,
                 model: NbtiModel = DEFAULT_MODEL) -> float:
    """Fig. 8: PMOS header threshold shift (volts).

    The header's gate is 0 (stressed) for the whole active time and 1
    (relaxing) during standby, so the shift depends on the RAS ratio and
    the *active* temperature only — "the threshold degradation is not
    influenced by the standby temperature variations".
    """
    profile = OperatingProfile.from_ras(ras, t_active=t_active,
                                        t_standby=t_standby)
    return model.sleep_transistor_shift(profile, t_total, vth_st)


def size_increase_fraction(delta_vth: float, vth_st: float,
                           tech: Technology = PTM90) -> float:
    """Fig. 9 / eq. (31): fractional ST upsizing that restores I_ON.

    ``Delta(W/L)/(W/L) = dVth / (Vdd - Vth_ST - dVth)``.
    """
    if delta_vth < 0:
        raise ValueError("threshold shift must be non-negative")
    headroom = tech.vdd - vth_st - delta_vth
    if headroom <= 0:
        raise ValueError("aged sleep transistor has no headroom left")
    return delta_vth / headroom


def nbti_aware_aspect_ratio(i_on: float, v_st: float, vth_st: float,
                            delta_vth: float,
                            tech: Technology = PTM90) -> float:
    """Eq. (31): the ST size including the end-of-life NBTI margin."""
    base = st_aspect_ratio(i_on, v_st, vth_st, tech)
    return base * (1.0 + size_increase_fraction(delta_vth, vth_st, tech))


#: The Fig. 8/9 sweep axes.
FIG8_VTH_VALUES: Tuple[float, ...] = (0.20, 0.25, 0.30, 0.35, 0.40)
FIG8_RAS_VALUES: Tuple[str, ...] = ("1:9", "1:5", "1:1", "5:1", "9:1")


def fig8_grid(vth_values: Sequence[float] = FIG8_VTH_VALUES,
              ras_values: Sequence[str] = FIG8_RAS_VALUES,
              t_total: float = TEN_YEARS,
              model: NbtiModel = DEFAULT_MODEL
              ) -> Dict[Tuple[float, str], float]:
    """ST dVth over the initial-Vth x RAS grid (volts)."""
    return {(vth, ras): st_vth_shift(vth, ras, t_total, model=model)
            for vth in vth_values for ras in ras_values}


def fig9_grid(vth_values: Sequence[float] = FIG8_VTH_VALUES,
              ras_values: Sequence[str] = FIG8_RAS_VALUES,
              t_total: float = TEN_YEARS,
              model: NbtiModel = DEFAULT_MODEL,
              tech: Technology = PTM90
              ) -> Dict[Tuple[float, str], float]:
    """Delta(W/L)/(W/L) over the same grid (fractional)."""
    shifts = fig8_grid(vth_values, ras_values, t_total, model)
    return {key: size_increase_fraction(dv, key[0], tech)
            for key, dv in shifts.items()}
