"""Tests for the sampled peak-current estimator."""

import pytest

from repro.netlist import iscas85, random_logic
from repro.sleep import estimate_block_current, estimate_peak_current


@pytest.fixture(scope="module")
def circuit():
    return random_logic("cur", n_inputs=12, n_outputs=4, n_gates=90, seed=18)


class TestPeakCurrent:
    def test_deterministic(self, circuit):
        a = estimate_peak_current(circuit, n_pairs=32, seed=5)
        b = estimate_peak_current(circuit, n_pairs=32, seed=5)
        assert a.peak == b.peak
        assert a.worst_pair == b.worst_pair

    def test_positive_and_ordered(self, circuit):
        est = estimate_peak_current(circuit, n_pairs=32, seed=5)
        assert est.mean_transition > 0
        # The windowed peak always exceeds the cycle-average.
        assert est.peak > est.mean_transition
        assert est.effective_simultaneity > 1.0

    def test_more_pairs_never_lowers_peak(self, circuit):
        """The peak is a running max over sampled transitions: a superset
        of samples (same seed -> same prefix) cannot shrink it."""
        small = estimate_peak_current(circuit, n_pairs=16, seed=7)
        large = estimate_peak_current(circuit, n_pairs=64, seed=7)
        assert large.peak >= small.peak * (1 - 1e-12)

    def test_coarser_bins_lower_peak(self, circuit):
        """Wider averaging windows smooth the activity wave."""
        sharp = estimate_peak_current(circuit, n_pairs=32, bins=50, seed=3)
        smooth = estimate_peak_current(circuit, n_pairs=32, bins=2, seed=3)
        assert smooth.peak <= sharp.peak * (1 + 1e-12)

    def test_single_bin_equals_transition_average(self, circuit):
        """With one bin the peak is just the worst whole-transition
        charge over the period."""
        est = estimate_peak_current(circuit, n_pairs=32, bins=1, seed=3)
        # Mean over transitions <= worst transition.
        assert est.peak >= est.mean_transition * (1 - 1e-12)

    def test_guards(self, circuit):
        with pytest.raises(ValueError):
            estimate_peak_current(circuit, n_pairs=0)
        with pytest.raises(ValueError):
            estimate_peak_current(circuit, bins=0)

    def test_deeper_circuit_spreads_activity(self):
        """c6288's deep array spreads switching across many levels, so
        its effective simultaneity sits well below the bin count."""
        est = estimate_peak_current(iscas85.load("c6288"), n_pairs=24,
                                    bins=25, seed=2)
        assert est.effective_simultaneity < 25 * 0.75

    def test_flat_estimator_comparable_scale(self, circuit):
        """The two estimators agree within a couple orders of magnitude
        (they answer slightly different questions: windowed peak vs
        derated total)."""
        flat = estimate_block_current(circuit)
        sampled = estimate_peak_current(circuit, n_pairs=32, seed=1).peak
        assert 0.01 < sampled / flat < 100
