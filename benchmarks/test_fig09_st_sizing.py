"""Fig. 9 — sleep-transistor Delta(W/L) vs initial Vth and RAS (eq. 31).

Published anchors: the largest upsizing is 3.94 % at Vth0 = 0.20 V,
RAS = 9:1; the smallest 1.13 % at Vth0 = 0.40 V, RAS = 1:9.
"""

from _common import emit
from repro.sleep import FIG8_RAS_VALUES, FIG8_VTH_VALUES, fig9_grid


def run_fig09():
    return fig9_grid()


def check(grid):
    assert abs(grid[(0.20, "9:1")] - 0.0394) < 5e-4
    assert abs(grid[(0.40, "1:9")] - 0.0113) < 5e-4
    # More aging -> more upsizing: monotone in the active share.
    for vth in FIG8_VTH_VALUES:
        row = [grid[(vth, r)] for r in FIG8_RAS_VALUES]
        assert row == sorted(row)


def report(grid):
    rows = []
    for vth in FIG8_VTH_VALUES:
        rows.append([f"{vth:.2f} V"]
                    + [f"{grid[(vth, r)] * 100:5.2f}" for r in FIG8_RAS_VALUES])
    emit("Fig. 9 — NBTI-aware ST upsizing Delta(W/L)/(W/L) (%)",
         ["Vth0 \\ RAS"] + list(FIG8_RAS_VALUES), rows)
    print("paper anchors: 3.94 % at (0.20 V, 9:1); 1.13 % at (0.40 V, 1:9)")


def test_fig09_st_sizing(run_once):
    grid = run_once(run_fig09)
    check(grid)
    report(grid)


if __name__ == "__main__":
    g = run_fig09()
    check(g)
    report(g)
