"""``python -m repro.obs REPORT.json ...`` — validate RunReport files.

Accepts file paths or ``-`` for stdin; reports **every** schema
violation per document.  Exit codes: 0 all valid, 1 any invalid or
unreadable, 2 usage error (no inputs).

Thin alias of :func:`repro.obs.report.main` that avoids the runpy
double-import warning of ``python -m repro.obs.report`` (the package
``__init__`` already imports that module).
"""

import sys

from repro.obs.report import main

if __name__ == "__main__":
    sys.exit(main())
