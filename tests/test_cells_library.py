"""Tests for the standard-cell library: logic, delay, leakage, stress."""

import itertools

import pytest

from repro.cells import (
    LeakageTable,
    best_case_vector,
    build_library,
    cell_leakage,
    max_stress_probability,
    stress_probabilities_for_cell,
    stress_under_vector,
    worst_case_vector,
)
from repro.tech import PTM90, PTM90_LP


@pytest.fixture(scope="module")
def lib():
    return build_library()


EXPECTED_FUNCTIONS = {
    "INV": lambda a: 1 - a,
    "BUF": lambda a: a,
    "NAND2": lambda a, b: 1 - (a & b),
    "NAND3": lambda a, b, c: 1 - (a & b & c),
    "NAND4": lambda a, b, c, d: 1 - (a & b & c & d),
    "NOR2": lambda a, b: 1 - (a | b),
    "NOR3": lambda a, b, c: 1 - (a | b | c),
    "NOR4": lambda a, b, c, d: 1 - (a | b | c | d),
    "AND2": lambda a, b: a & b,
    "AND3": lambda a, b, c: a & b & c,
    "AND4": lambda a, b, c, d: a & b & c & d,
    "OR2": lambda a, b: a | b,
    "OR3": lambda a, b, c: a | b | c,
    "OR4": lambda a, b, c, d: a | b | c | d,
    "XOR2": lambda a, b: a ^ b,
    "XNOR2": lambda a, b: 1 - (a ^ b),
    "AOI21": lambda a, b, c: 1 - ((a & b) | c),
    "AOI22": lambda a, b, c, d: 1 - ((a & b) | (c & d)),
    "OAI21": lambda a, b, c: 1 - ((a | b) & c),
    "OAI22": lambda a, b, c, d: 1 - ((a | b) & (c | d)),
}


class TestLogic:
    def test_library_is_complete(self, lib):
        assert set(lib.names()) == set(EXPECTED_FUNCTIONS)

    @pytest.mark.parametrize("name", sorted(EXPECTED_FUNCTIONS))
    def test_truth_tables(self, lib, name):
        cell = lib.get(name)
        fn = EXPECTED_FUNCTIONS[name]
        for vec in cell.all_vectors():
            assert cell.evaluate(vec) == fn(*vec), f"{name}{vec}"

    def test_get_unknown_raises(self, lib):
        with pytest.raises(KeyError, match="NAND2"):
            lib.get("NAND17")

    def test_wrong_arity_raises(self, lib):
        with pytest.raises(ValueError, match="expects"):
            lib.get("NAND2").evaluate((0, 1, 1))

    def test_contains_and_len(self, lib):
        assert "INV" in lib
        assert "FOO" not in lib
        assert len(lib) == len(EXPECTED_FUNCTIONS)


class TestDelay:
    LOAD = 4e-15

    def test_positive_delays(self, lib):
        for cell in lib:
            for edge in ("rise", "fall"):
                assert cell.delay(PTM90, self.LOAD, edge) > 0

    def test_aging_slows_rise_only(self, lib):
        """NBTI sits on the PMOS: output-rise delay grows, fall does not."""
        nand = lib.get("NAND2")
        fresh_rise = nand.delay(PTM90, self.LOAD, "rise")
        aged_rise = nand.delay(PTM90, self.LOAD, "rise", delta_vth_pmos=0.03)
        assert aged_rise > fresh_rise
        fresh_fall = nand.delay(PTM90, self.LOAD, "fall")
        aged_fall = nand.delay(PTM90, self.LOAD, "fall", delta_vth_pmos=0.03)
        assert aged_fall == pytest.approx(fresh_fall)

    def test_multistage_aging_affects_both_edges(self, lib):
        """An AND's internal NAND rises when the output falls, so aging
        shows up on both output edges of composed cells."""
        and2 = lib.get("AND2")
        assert (and2.delay(PTM90, self.LOAD, "fall", delta_vth_pmos=0.03)
                > and2.delay(PTM90, self.LOAD, "fall"))

    def test_eq22_relative_degradation(self, lib):
        """Relative rise-delay shift matches eq. (22) for a 1-stage cell."""
        inv = lib.get("INV")
        dvth = 0.02
        d0 = inv.delay(PTM90, self.LOAD, "rise")
        d1 = inv.delay(PTM90, self.LOAD, "rise", delta_vth_pmos=dvth)
        vth0 = PTM90.pmos.vth0
        expected = PTM90.alpha * dvth / (PTM90.vdd - vth0)
        assert (d1 - d0) / d0 == pytest.approx(expected, rel=0.05)

    def test_input_capacitance(self, lib):
        inv = lib.get("INV")
        cap = inv.input_capacitance(PTM90, "A")
        # Wn + Wp = 240 + 480 nm at 1 nF per meter of width.
        assert cap == pytest.approx((240e-9 + 480e-9) * 1e-9)
        with pytest.raises(ValueError):
            inv.input_capacitance(PTM90, "Z")

    def test_supply_drop_slows_cell(self, lib):
        nand = lib.get("NAND2")
        assert (nand.delay(PTM90, self.LOAD, "fall", supply_drop=0.05)
                > nand.delay(PTM90, self.LOAD, "fall"))

    def test_bad_edge_rejected(self, lib):
        with pytest.raises(ValueError, match="edge"):
            lib.get("INV").delay(PTM90, self.LOAD, "up")


class TestLeakageOrderings:
    """The Table 2 structure: which input vector minimizes leakage, and
    how that correlates with NBTI stress per gate family."""

    T = 400.0

    def test_inv_min_leakage_is_input_zero(self, lib):
        inv = lib.get("INV")
        l0 = cell_leakage(inv, (0,), PTM90, self.T)
        l1 = cell_leakage(inv, (1,), PTM90, self.T)
        assert l0 < l1

    def test_inv_min_leakage_vector_is_worst_nbti(self, lib):
        inv = lib.get("INV")
        assert stress_under_vector(inv, (0,)) != set()
        assert stress_under_vector(inv, (1,)) == set()

    @pytest.mark.parametrize("name", ["NAND2", "NAND3", "NAND4"])
    def test_nand_min_leakage_is_all_zero_and_worst_nbti(self, lib, name):
        cell = lib.get(name)
        table = {v: cell_leakage(cell, v, PTM90, self.T) for v in cell.all_vectors()}
        min_vec = min(table, key=table.get)
        assert min_vec == tuple([0] * cell.n_inputs)
        # All-zero stresses every PMOS: the worst NBTI state.
        n_stressed = len(stress_under_vector(cell, min_vec))
        assert n_stressed == cell.n_inputs

    @pytest.mark.parametrize("name", ["NOR2", "NOR3", "NOR4"])
    def test_nor_min_leakage_vector_is_best_nbti(self, lib, name):
        cell = lib.get(name)
        table = {v: cell_leakage(cell, v, PTM90, self.T) for v in cell.all_vectors()}
        min_vec = min(table, key=table.get)
        # The minimum-leakage state stresses no PMOS at all for NOR gates.
        assert stress_under_vector(cell, min_vec) == set()
        # And the all-zero state is the NBTI worst case AND the leakage max.
        all_zero = tuple([0] * cell.n_inputs)
        assert len(stress_under_vector(cell, all_zero)) == cell.n_inputs
        assert table[all_zero] == max(table.values())

    def test_stacking_nand_all_zero_below_single_zero(self, lib):
        nand = lib.get("NAND2")
        assert (cell_leakage(nand, (0, 0), PTM90, self.T)
                < cell_leakage(nand, (1, 0), PTM90, self.T))

    def test_leakage_grows_with_temperature(self, lib):
        nand = lib.get("NAND2")
        assert (cell_leakage(nand, (1, 1), PTM90, 400.0)
                > cell_leakage(nand, (1, 1), PTM90, 330.0))

    def test_lp_library_leaks_far_less(self):
        lp = build_library(PTM90_LP)
        hp = build_library(PTM90)
        leak_lp = cell_leakage(lp.get("NAND2"), (1, 1), PTM90_LP, 400.0)
        leak_hp = cell_leakage(hp.get("NAND2"), (1, 1), PTM90, 400.0)
        assert leak_lp < 0.2 * leak_hp

    def test_subthreshold_only_mode(self, lib):
        nand = lib.get("NAND2")
        with_gate = cell_leakage(nand, (0, 0), PTM90, self.T)
        without = cell_leakage(nand, (0, 0), PTM90, self.T,
                               include_gate_leakage=False)
        assert 0 < without < with_gate


class TestLeakageTable:
    def test_build_and_lookup(self, lib):
        table = LeakageTable.build(lib, 400.0)
        direct = cell_leakage(lib.get("NOR2"), (1, 1), PTM90, 400.0)
        assert table.lookup("NOR2", (1, 1)) == pytest.approx(direct)

    def test_min_max_vectors(self, lib):
        table = LeakageTable.build(lib, 400.0)
        vec, leak = table.min_vector("NAND2")
        assert vec == (0, 0)
        _, leak_max = table.max_vector("NAND2")
        assert leak_max > leak

    def test_expected_leakage_interpolates(self, lib):
        table = LeakageTable.build(lib, 400.0)
        lo = table.min_vector("NAND2")[1]
        hi = table.max_vector("NAND2")[1]
        mid = table.expected_leakage("NAND2", [0.5, 0.5])
        assert lo <= mid <= hi

    def test_expected_leakage_degenerate_matches_lookup(self, lib):
        table = LeakageTable.build(lib, 400.0)
        assert table.expected_leakage("NAND2", [1.0, 0.0]) == pytest.approx(
            table.lookup("NAND2", (1, 0)))

    def test_unknown_cell_raises(self, lib):
        table = LeakageTable.build(lib, 400.0)
        with pytest.raises(KeyError):
            table.lookup("FOO", (0,))


class TestStressHelpers:
    def test_worst_and_best_vectors_inv(self, lib):
        inv = lib.get("INV")
        assert tuple(worst_case_vector(inv)) == (0,)
        assert tuple(best_case_vector(inv)) == (1,)

    def test_stress_probability_inv(self, lib):
        inv = lib.get("INV")
        probs = stress_probabilities_for_cell(inv, {"A": 0.7})
        # P(stress) = P(input = 0) = 0.3.
        assert list(probs.values()) == [pytest.approx(0.3)]

    def test_stress_probability_missing_pin(self, lib):
        with pytest.raises(ValueError, match="missing"):
            stress_probabilities_for_cell(lib.get("NAND2"), {"A": 0.5})

    def test_buf_internal_stage_probability(self, lib):
        """BUF's 2nd stage PMOS sees P(n1 = 0) = P(A = 1)."""
        buf = lib.get("BUF")
        probs = stress_probabilities_for_cell(buf, {"A": 0.8})
        values = sorted(probs.values())
        assert values[0] == pytest.approx(0.2)   # stage 1 PMOS: P(A=0)
        assert values[1] == pytest.approx(0.8)   # stage 2 PMOS: P(n1=0)=P(A=1)

    def test_max_stress_probability(self, lib):
        nand = lib.get("NAND2")
        p = max_stress_probability(nand, {"A": 0.4, "B": 0.9})
        # Parallel pull-up: each PMOS stressed with its own P(pin=0).
        assert p == pytest.approx(0.6)

    def test_nor_stacked_probability(self, lib):
        nor = lib.get("NOR2")
        probs = stress_probabilities_for_cell(nor, {"A": 0.5, "B": 0.5})
        assert sorted(probs.values()) == [pytest.approx(0.25), pytest.approx(0.5)]
