"""Table 4 — ISCAS85 delay degradation and internal-node-control potential.

Paper setting: RAS = 1:9, 10-year horizon, T_standby swept 330-400 K.
Published anchors (suite averages):

* worst-case degradation (all internal nodes 0) grows from ~4.05 % at
  330 K to ~7.35 % at 400 K;
* best-case (all PMOS driven 1) stays ~3.32 % at every temperature
  ("temperature has negligible effect on NBTI relaxation phase");
* the internal-node-control potential grows from ~18.1 % to ~54.9 %.
"""

from _common import emit
from repro.constants import TEN_YEARS
from repro.flow.parallel import run_potential_sweep
from repro.netlist import iscas85

CIRCUITS = iscas85.NAMES
T_STANDBY = (330.0, 350.0, 370.0, 400.0)


def run_table4(max_workers=None):
    return run_potential_sweep(CIRCUITS, T_STANDBY, ras="1:9",
                               t_total=TEN_YEARS, max_workers=max_workers)


def check(rows):
    for name, sweep in rows.items():
        worst = [r.worst_degradation for r in sweep]
        best = [r.best_degradation for r in sweep]
        pots = [r.potential for r in sweep]
        assert worst == sorted(worst), name          # rises with T_st
        assert max(best) - min(best) < 1e-9, name    # best is flat
        assert pots == sorted(pots), name            # potential rises
    # Suite averages near the paper's anchors.
    n = len(rows)
    avg_worst_330 = sum(r[0].worst_degradation for r in rows.values()) / n
    avg_worst_400 = sum(r[-1].worst_degradation for r in rows.values()) / n
    avg_best = sum(r[0].best_degradation for r in rows.values()) / n
    avg_pot_330 = sum(r[0].potential for r in rows.values()) / n
    avg_pot_400 = sum(r[-1].potential for r in rows.values()) / n
    assert 0.025 < avg_worst_330 < 0.06     # paper: 4.05 %
    assert 0.05 < avg_worst_400 < 0.10      # paper: 7.35 %
    assert 0.02 < avg_best < 0.05           # paper: ~3.32 %
    assert 0.10 < avg_pot_330 < 0.30        # paper: 18.1 %
    assert 0.40 < avg_pot_400 < 0.70        # paper: 54.9 %


def report(rows):
    printable = []
    for name, sweep in rows.items():
        printable.append(
            [name, f"{sweep[0].fresh_delay * 1e9:7.4f}",
             f"{sweep[0].best_degradation * 100:5.2f}"]
            + [f"{r.worst_degradation * 100:5.2f}" for r in sweep]
            + [f"{r.potential * 100:5.1f}" for r in sweep])
    emit("Table 4 — degradation (%) and internal-node-control potential "
         "(%), RAS 1:9",
         ["circuit", "delay (ns)", "best"]
         + [f"worst@{t:.0f}K" for t in T_STANDBY]
         + [f"pot@{t:.0f}K" for t in T_STANDBY],
         printable)
    n = len(rows)
    print(f"suite averages: worst 330K "
          f"{sum(r[0].worst_degradation for r in rows.values()) / n * 100:.2f}% "
          f"(paper 4.05%), worst 400K "
          f"{sum(r[-1].worst_degradation for r in rows.values()) / n * 100:.2f}% "
          f"(paper 7.35%), best "
          f"{sum(r[0].best_degradation for r in rows.values()) / n * 100:.2f}% "
          f"(paper ~3.32%), potential 330K "
          f"{sum(r[0].potential for r in rows.values()) / n * 100:.1f}% "
          f"(paper 18.1%), potential 400K "
          f"{sum(r[-1].potential for r in rows.values()) / n * 100:.1f}% "
          f"(paper 54.9%)")


def test_table4_internal_node(run_once):
    rows = run_once(run_table4)
    check(rows)
    report(rows)


if __name__ == "__main__":
    r = run_table4()
    check(r)
    report(r)
