"""Sleep-transistor insertion and NBTI-aware sizing (S10)."""

from repro.sleep.sizing import (
    FIG8_RAS_VALUES,
    FIG8_VTH_VALUES,
    K_TRIODE_P,
    fig8_grid,
    fig9_grid,
    max_virtual_rail_drop,
    nbti_aware_aspect_ratio,
    size_increase_fraction,
    st_aspect_ratio,
    st_vth_shift,
)
from repro.sleep.clustering import (
    ClusteredDesign,
    cluster_gates,
    clustered_design,
)
from repro.sleep.current import PeakCurrentEstimate, estimate_peak_current
from repro.sleep.fine_grain import (
    FineGrainDesign,
    design_fine_grain,
    uniform_fine_grain_area,
)
from repro.sleep.insertion import (
    GatedTimingPoint,
    SleepStyle,
    SleepTransistorDesign,
    design_sleep_transistor,
    estimate_block_current,
    gated_aged_delay,
    gated_lifetime_series,
)

__all__ = [
    "FIG8_RAS_VALUES", "FIG8_VTH_VALUES", "K_TRIODE_P",
    "fig8_grid", "fig9_grid", "max_virtual_rail_drop",
    "nbti_aware_aspect_ratio", "size_increase_fraction",
    "st_aspect_ratio", "st_vth_shift",
    "ClusteredDesign", "cluster_gates", "clustered_design",
    "PeakCurrentEstimate", "estimate_peak_current",
    "FineGrainDesign", "design_fine_grain", "uniform_fine_grain_area",
    "GatedTimingPoint", "SleepStyle", "SleepTransistorDesign",
    "design_sleep_transistor", "estimate_block_current", "gated_aged_delay",
    "gated_lifetime_series",
]
