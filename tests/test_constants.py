"""Unit tests for repro.constants."""

import math

import pytest

from repro import constants


def test_thermal_voltage_room_temperature():
    # kT/q at 300 K is the canonical 25.85 mV.
    assert constants.thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)


def test_thermal_voltage_scales_linearly():
    assert constants.thermal_voltage(400.0) == pytest.approx(
        constants.thermal_voltage(200.0) * 2.0
    )


def test_thermal_voltage_rejects_nonpositive():
    with pytest.raises(ValueError):
        constants.thermal_voltage(0.0)
    with pytest.raises(ValueError):
        constants.thermal_voltage(-10.0)


def test_celsius_kelvin_roundtrip():
    assert constants.kelvin_to_celsius(constants.celsius_to_kelvin(85.0)) == pytest.approx(85.0)


def test_celsius_to_kelvin_anchor():
    assert constants.celsius_to_kelvin(0.0) == pytest.approx(273.15)


def test_years_and_back():
    assert constants.seconds_to_years(constants.years(10.0)) == pytest.approx(10.0)


def test_ten_years_constant_matches_paper():
    # The paper quotes the lifetime horizon as 3.15e8 s ("about 10 years").
    assert constants.TEN_YEARS == pytest.approx(3.15e8)
    assert constants.seconds_to_years(constants.TEN_YEARS) == pytest.approx(10.0, rel=0.01)


def test_unit_helpers():
    assert constants.volts_to_millivolts(0.03) == pytest.approx(30.0)
    assert constants.amps_to_nanoamps(2e-9) == pytest.approx(2.0)
