"""Calibration of the Vth-shift constant K_V (paper eqs. 12 and 23).

The threshold shift is ``dVth = K_V * S_n * tau^(1/4)`` (eq. 12), with
``K_V = (1+m) q A / C_ox`` folding every device constant.  Rather than
chase each physical constant, we pin ``K_V`` to the two numeric anchors
the paper itself publishes in Fig. 8 (the closed-form model makes the
algebra exact):

* ``dVth = 30.3 mV`` for a PMOS with Vth0 = 0.20 V after 10 years at
  RAS = 9:1 (sleep-transistor worst case: DC stress while active at
  400 K, relaxing in standby), and
* ``dVth =  6.7 mV`` for Vth0 = 0.40 V at RAS = 1:9.

Two knobs are solved from the two anchors: the reference magnitude
``kv_ref`` and the oxide-field scale ``e0_volts`` of the gate-overdrive
dependence (eq. 23):

    K_V(vth0) = kv_ref * sqrt((Vdd - vth0)/(Vdd - vth_ref))
                       * exp((vth_ref - vth0) / e0_volts)

Temperature enters through the H-diffusivity, ``K_V(T) = K_V(T_ref) *
(D(T)/D(T_ref))^(1/4)`` with ``T_ref = 400 K`` (eq. 16).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import TEN_YEARS
from repro.core.multicycle import s_closed_form
from repro.core.numerics import quarter_root, uexp
from repro.core.temperature import diffusivity_ratio


@dataclass(frozen=True)
class NbtiCalibration:
    """Calibrated constants of the temperature-aware NBTI model.

    Attributes:
        kv_ref: K_V at (vth_ref, t_ref) in V * s^(-1/4).
        vth_ref: reference |Vth0| (V) at which ``kv_ref`` is quoted.
        e0_volts: oxide-field scale of eq. (23), pre-multiplied by tox so
            it reads directly in volts of gate overdrive.
        t_ref: reference temperature (K); the paper's active mode.
        ed: H-diffusion activation energy (eV), eq. (16)/[47].
        vdd: supply the overdrive is measured against.
    """

    kv_ref: float
    vth_ref: float = 0.20
    e0_volts: float = 0.27
    t_ref: float = 400.0
    ed: float = 0.49
    vdd: float = 1.0

    def __post_init__(self) -> None:
        if self.kv_ref <= 0 or self.e0_volts <= 0:
            raise ValueError("kv_ref and e0_volts must be positive")
        if not 0.0 < self.vth_ref < self.vdd:
            raise ValueError("vth_ref must sit inside (0, Vdd)")

    def field_factor(self, vth0: float) -> float:
        """Gate-overdrive dependence of K_V relative to ``vth_ref``.

        > 1 for lower-Vth (higher-field) devices: they age faster, which
        is also the variance-compensation mechanism of Fig. 12 / [51].
        """
        if not 0.0 < vth0 < self.vdd:
            raise ValueError(f"vth0={vth0} outside (0, Vdd)")
        overdrive = self.vdd - vth0
        ref_overdrive = self.vdd - self.vth_ref
        # uexp (not math.exp) so the vectorized kernel reproduces this
        # bit-for-bit; sqrt is correctly rounded everywhere.
        return math.sqrt(overdrive / ref_overdrive) * uexp(
            (self.vth_ref - vth0) / self.e0_volts)

    def temperature_factor(self, temperature: float) -> float:
        """``(D(T)/D(T_ref))^(1/4)``: the N_it Arrhenius factor."""
        return quarter_root(diffusivity_ratio(temperature, self.t_ref,
                                              self.ed))

    def kv(self, vth0: float, temperature: float) -> float:
        """K_V for a device with fresh threshold ``vth0`` at ``temperature``."""
        return self.kv_ref * self.field_factor(vth0) * self.temperature_factor(temperature)


def calibrate_from_anchors(
        anchor_high=(0.20, 0.9, 30.3e-3),
        anchor_low=(0.40, 0.1, 6.7e-3),
        lifetime: float = TEN_YEARS,
        t_ref: float = 400.0,
        ed: float = 0.49,
        vdd: float = 1.0) -> NbtiCalibration:
    """Solve (kv_ref, e0_volts) from two (vth0, duty, dVth) anchors.

    Each anchor describes a device DC-stressed while active at ``t_ref``
    and fully relaxing in standby, i.e. equivalent duty = active
    fraction, for ``lifetime`` seconds — the Fig. 8 sleep-transistor
    setting.  With the closed form ``dVth = K_V(vth0) * S(c, n)`` the two
    equations separate:

    * the anchor ratio fixes ``e0_volts`` (the only remaining unknown in
      the Vth dependence), and
    * either anchor then fixes ``kv_ref``.
    """
    vth1, duty1, dv1 = anchor_high
    vth2, duty2, dv2 = anchor_low
    if vth1 == vth2:
        raise ValueError("anchors must have distinct Vth0 to separate e0")
    s1 = s_closed_form(duty1, lifetime)
    s2 = s_closed_form(duty2, lifetime)
    sqrt_ratio = math.sqrt((vdd - vth2) / (vdd - vth1))
    # dv1/dv2 = (1/field2) * s1/s2 with field measured from vth1:
    #   field2 = sqrt_ratio * exp((vth1 - vth2)/e0).
    target = (dv2 / dv1) * (s1 / s2) / sqrt_ratio
    if target <= 0 or target >= 1:
        raise ValueError(f"anchor set inconsistent (field factor {target})")
    e0_volts = (vth1 - vth2) / math.log(target)
    kv_ref = dv1 / s1
    return NbtiCalibration(kv_ref=kv_ref, vth_ref=vth1, e0_volts=e0_volts,
                           t_ref=t_ref, ed=ed, vdd=vdd)


#: Library-wide default, pinned to the paper's Fig. 8 endpoints.
DEFAULT_CALIBRATION = calibrate_from_anchors()
