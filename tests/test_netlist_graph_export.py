"""Tests for the NetworkX interop layer."""

import networkx as nx
import pytest

from repro.netlist import (
    from_networkx,
    iscas85,
    load_packaged,
    random_logic,
    to_networkx,
)
from repro.sim import evaluate, random_vectors


@pytest.fixture(scope="module")
def circuit():
    return load_packaged("c17")


class TestExport:
    def test_node_and_edge_counts(self, circuit):
        g = to_networkx(circuit)
        assert g.number_of_nodes() == len(circuit.nets)
        assert g.number_of_edges() == sum(len(gt.inputs)
                                          for gt in circuit.gates.values())

    def test_attributes(self, circuit):
        g = to_networkx(circuit)
        assert g.nodes["1"]["kind"] == "input"
        assert g.nodes["10"]["cell"] == "NAND2"
        assert g.nodes["22"]["is_output"]
        assert not g.nodes["10"]["is_output"]
        assert g.nodes["22"]["level"] == 3

    def test_is_dag(self, circuit):
        assert nx.is_directed_acyclic_graph(to_networkx(circuit))

    def test_longest_graph_path_matches_depth(self):
        c = iscas85.load("c432")
        g = to_networkx(c)
        assert nx.dag_longest_path_length(g) == c.depth()


class TestRoundTrip:
    def test_functional_roundtrip(self):
        c = random_logic("gx", n_inputs=8, n_outputs=3, n_gates=40, seed=4)
        clone = from_networkx(to_networkx(c), name=c.name)
        assert clone.stats() == c.stats()
        for vec in random_vectors(c, 8, seed=2):
            a, b = evaluate(c, vec), evaluate(clone, vec)
            for po in c.primary_outputs:
                assert a[po] == b[po]

    def test_pin_order_preserved(self):
        """Input pin order matters for non-symmetric cells."""
        from repro.netlist import Circuit, Gate
        c = Circuit("x", ["a", "b", "c"], ["g"],
                    [Gate("g", "OAI21", ["a", "b", "c"])])
        clone = from_networkx(to_networkx(c))
        assert clone.gates["g"].inputs == ("a", "b", "c")

    def test_missing_cell_attribute_rejected(self):
        g = nx.DiGraph()
        g.add_node("a", kind="input", is_output=False)
        g.add_node("g", kind="gate", is_output=True)
        g.add_edge("a", "g", pin=0)
        with pytest.raises(ValueError, match="cell"):
            from_networkx(g)

    def test_missing_kind_rejected(self):
        g = nx.DiGraph()
        g.add_node("mystery")
        with pytest.raises(ValueError, match="kind"):
            from_networkx(g)

    def test_no_outputs_rejected(self):
        g = nx.DiGraph()
        g.add_node("a", kind="input", is_output=False)
        with pytest.raises(ValueError, match="outputs"):
            from_networkx(g)
