"""Tests for MLV search, NBTI-aware selection, internal node control,
and MLV alternation."""

import pytest

from repro.cells import LeakageTable, build_library
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.ivc import (
    compare_alternation,
    exhaustive_mlv_search,
    internal_node_potential,
    potential_sweep,
    probability_based_mlv_search,
    select_mlv_for_nbti,
)
from repro.leakage import leakage_for_vector
from repro.netlist import Circuit, Gate, iscas85, random_logic
from repro.sim import bits_to_vector
from repro.sta import AgingAnalyzer


@pytest.fixture(scope="module")
def lib():
    return build_library()


@pytest.fixture(scope="module")
def table(lib):
    return LeakageTable.build(lib, 400.0)


@pytest.fixture(scope="module")
def small_circuit():
    """12-input random logic: big enough to be interesting, small enough
    to enumerate exhaustively."""
    return random_logic("small", n_inputs=12, n_outputs=3, n_gates=60, seed=77)


PROFILE = OperatingProfile.from_ras("1:5", t_standby=330.0)


class TestProbabilitySearch:
    def test_deterministic(self, small_circuit, table):
        a = probability_based_mlv_search(small_circuit, table, seed=3)
        b = probability_based_mlv_search(small_circuit, table, seed=3)
        assert [r.bits for r in a.records] == [r.bits for r in b.records]

    def test_records_sorted_by_leakage(self, small_circuit, table):
        res = probability_based_mlv_search(small_circuit, table, seed=3)
        leaks = [r.leakage for r in res.records]
        assert leaks == sorted(leaks)

    def test_set_within_range_fraction(self, small_circuit, table):
        res = probability_based_mlv_search(small_circuit, table, seed=3,
                                           range_fraction=0.02)
        assert res.records[-1].leakage <= res.best.leakage * 1.02 + 1e-18

    def test_beats_or_matches_random_sampling(self, small_circuit, table):
        """The probability iteration must do at least as well as its own
        initial random population."""
        import random
        from repro.sim.vectors import random_vector
        res = probability_based_mlv_search(small_circuit, table, seed=9,
                                           n_vectors=32, max_iterations=10)
        rng = random.Random(9)
        random_best = min(
            leakage_for_vector(small_circuit, random_vector(small_circuit, rng), table)
            for _ in range(32))
        assert res.best.leakage <= random_best + 1e-18

    def test_near_exhaustive_optimum(self, small_circuit, table):
        """On an enumerable circuit the heuristic gets close to the true
        minimum (within a few percent)."""
        exact = exhaustive_mlv_search(small_circuit, table)
        heur = probability_based_mlv_search(small_circuit, table, seed=1,
                                            n_vectors=128, max_iterations=20)
        assert heur.best.leakage <= exact.best.leakage * 1.03

    def test_leakage_values_correct(self, small_circuit, table):
        res = probability_based_mlv_search(small_circuit, table, seed=3)
        rec = res.best
        direct = leakage_for_vector(
            small_circuit, bits_to_vector(small_circuit, rec.bits), table)
        assert rec.leakage == pytest.approx(direct)

    def test_guards(self, small_circuit, table):
        with pytest.raises(ValueError):
            probability_based_mlv_search(small_circuit, table, n_vectors=1)
        with pytest.raises(ValueError):
            probability_based_mlv_search(small_circuit, table, range_fraction=0.0)


class TestExhaustiveSearch:
    def test_finds_global_minimum(self, table):
        c = random_logic("tiny", n_inputs=6, n_outputs=2, n_gates=25, seed=5)
        res = exhaustive_mlv_search(c, table)
        assert res.evaluated == 64
        from repro.sim import all_vectors
        best = min(leakage_for_vector(c, v, table) for v in all_vectors(c))
        assert res.best.leakage == pytest.approx(best)

    def test_too_many_inputs_rejected(self, table):
        with pytest.raises(ValueError):
            exhaustive_mlv_search(iscas85.load("c2670"), table)


class TestNbtiAwareSelection:
    def test_selection_structure(self, small_circuit, table):
        mlv = probability_based_mlv_search(small_circuit, table, seed=3,
                                           max_set_size=6)
        sel = select_mlv_for_nbti(small_circuit, mlv, PROFILE)
        assert len(sel.records) == len(mlv.records)
        assert sel.chosen.aged_delay <= sel.worst_in_set.aged_delay
        assert sel.mlv_delay_spread >= 0.0
        assert sel.fresh_delay > 0

    def test_chosen_degradation_in_paper_band(self, small_circuit, table):
        """Table 3: minimized degradation is a few percent of delay, and
        the MLV-to-MLV spread is far smaller (low-T standby)."""
        mlv = probability_based_mlv_search(small_circuit, table, seed=3,
                                           max_set_size=8)
        sel = select_mlv_for_nbti(small_circuit, mlv, PROFILE)
        assert 0.01 < sel.chosen.relative_degradation < 0.10
        assert sel.mlv_delay_spread < 0.01

    def test_empty_set_rejected(self, small_circuit, table):
        from repro.ivc import MLVSearchResult
        empty = MLVSearchResult(records=[], iterations=0, converged=False,
                                evaluated=0)
        with pytest.raises(ValueError):
            select_mlv_for_nbti(small_circuit, empty, PROFILE)


class TestInternalNodeControl:
    def test_potential_positive_and_bounded(self, small_circuit):
        row = internal_node_potential(small_circuit, PROFILE)
        assert 0.0 < row.potential < 1.0
        assert row.worst_degradation > row.best_degradation > 0

    def test_potential_grows_with_standby_temperature(self, small_circuit):
        rows = potential_sweep(small_circuit, (330.0, 370.0, 400.0))
        pots = [r.potential for r in rows]
        assert pots == sorted(pots)
        # Paper's Table 4 band: ~18 % at 330 K up to ~55 % at 400 K.
        assert 0.05 < pots[0] < 0.35
        assert 0.35 < pots[-1] < 0.75

    def test_best_case_flat_across_temperatures(self, small_circuit):
        rows = potential_sweep(small_circuit, (330.0, 400.0))
        assert rows[0].best_degradation == pytest.approx(
            rows[1].best_degradation, rel=1e-9)

    def test_mlv_between_bounds(self, small_circuit, table):
        """Any concrete MLV's degradation sits between the internal-node
        bounding cases (Table 3 vs Table 4 consistency)."""
        row = internal_node_potential(small_circuit, PROFILE)
        mlv = probability_based_mlv_search(small_circuit, table, seed=3,
                                           max_set_size=4)
        sel = select_mlv_for_nbti(small_circuit, mlv, PROFILE)
        assert (row.best_degradation - 1e-12
                <= sel.chosen.relative_degradation
                <= row.worst_degradation + 1e-12)


class TestAlternation:
    def test_alternation_reduces_worst_shift(self, small_circuit, table):
        """Rotating complementary vectors flattens the worst device
        shift (Penelope's effect)."""
        mlv = exhaustive_mlv_search(small_circuit, table, range_fraction=0.2,
                                    max_set_size=8)
        bits = [r.bits for r in mlv.records]
        # Ensure some diversity: add the complement of the best vector.
        complement = tuple(1 - b for b in bits[0])
        cmp = compare_alternation(small_circuit, [bits[0], complement], PROFILE)
        assert cmp.alternating_max_shift <= cmp.single_max_shift + 1e-15
        assert cmp.shift_benefit >= 0.0

    def test_single_vector_alternation_is_identity(self, small_circuit):
        vec = tuple(0 for _ in small_circuit.primary_inputs)
        cmp = compare_alternation(small_circuit, [vec], PROFILE)
        assert cmp.alternating_aged_delay == pytest.approx(cmp.single_aged_delay)

    def test_empty_vectors_rejected(self, small_circuit):
        with pytest.raises(ValueError):
            compare_alternation(small_circuit, [], PROFILE)
