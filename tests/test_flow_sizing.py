"""Tests for NBTI-aware gate sizing."""

import pytest

from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.flow import SizingTimer, size_for_aging
from repro.netlist import iscas85, load_packaged, random_logic
from repro.sta import ALL_ZERO, AgingAnalyzer, analyze


@pytest.fixture(scope="module")
def circuit():
    return random_logic("sz", n_inputs=12, n_outputs=4, n_gates=80, seed=66)


PROFILE = OperatingProfile.from_ras("1:9", t_standby=400.0)


class TestSizingTimer:
    def test_unsized_matches_full_sta(self, circuit):
        timer = SizingTimer(circuit)
        delay, critical = timer.circuit_delay()
        assert delay == pytest.approx(analyze(circuit).circuit_delay,
                                      rel=1e-12)
        assert critical

    def test_aging_matches_full_sta(self, circuit):
        timer = SizingTimer(circuit)
        shifts = {g: 0.001 * (i % 5) for i, g in enumerate(circuit.gates)}
        delay, _ = timer.circuit_delay(delta_vth=shifts)
        assert delay == pytest.approx(
            analyze(circuit, delta_vth=shifts).circuit_delay, rel=1e-12)

    def test_upsizing_some_critical_gate_helps(self, circuit):
        """Upsizing is not free (it loads the drivers), but at least one
        critical gate must give a net improvement."""
        timer = SizingTimer(circuit)
        delay, critical = timer.circuit_delay()
        improvements = [delay - timer.circuit_delay(sizes={g: 2.0})[0]
                        for g in critical]
        assert max(improvements) > 0

    def test_upsizing_loads_its_drivers(self, circuit):
        """Doubling a gate raises the load its drivers see."""
        timer = SizingTimer(circuit)
        gate = next(iter(circuit.gates.values()))
        driver = next((n for n in gate.inputs if n in circuit.gates), None)
        if driver is None:
            pytest.skip("first gate fed only by PIs")
        base = timer.load(driver, {})
        heavier = timer.load(driver, {gate.name: 2.0})
        assert heavier > base

    def test_critical_path_is_connected(self, circuit):
        timer = SizingTimer(circuit)
        _, critical = timer.circuit_delay()
        # critical comes endpoint-first; consecutive gates are connected.
        for later, earlier in zip(critical, critical[1:]):
            assert earlier in circuit.gates[later].inputs


class TestSizeForAging:
    def test_recovers_fresh_target(self, circuit):
        res = size_for_aging(circuit, PROFILE, TEN_YEARS)
        assert res.met
        assert res.achieved_delay <= res.target_delay * (1 + 1e-9)
        assert res.area_overhead > 0.0

    def test_area_cost_modest(self, circuit):
        """A few percent delay recovery should cost a few percent area,
        not a redesign."""
        res = size_for_aging(circuit, PROFILE, TEN_YEARS)
        assert res.area_overhead < 0.25

    def test_aged_timer_agrees_with_result(self, circuit):
        res = size_for_aging(circuit, PROFILE, TEN_YEARS)
        analyzer = AgingAnalyzer()
        shifts = analyzer.gate_shifts(circuit, PROFILE, TEN_YEARS,
                                      standby=ALL_ZERO)
        timer = SizingTimer(circuit)
        delay, _ = timer.circuit_delay(res.sizes, shifts)
        assert delay == pytest.approx(res.achieved_delay, rel=1e-12)

    def test_stricter_target_costs_more(self, circuit):
        plain = size_for_aging(circuit, PROFILE, TEN_YEARS)
        strict = size_for_aging(circuit, PROFILE, TEN_YEARS,
                                slack_target=0.02)
        assert strict.area_factor >= plain.area_factor

    def test_area_cap_respected(self, circuit):
        res = size_for_aging(circuit, PROFILE, TEN_YEARS,
                             max_area_factor=1.001)
        assert res.area_factor <= 1.01

    def test_guards(self, circuit):
        with pytest.raises(ValueError):
            size_for_aging(circuit, PROFILE, slack_target=1.5)

    def test_works_on_benchmark(self):
        res = size_for_aging(iscas85.load("c432"), PROFILE, TEN_YEARS)
        assert res.met
        assert 0 < res.area_overhead < 0.15
