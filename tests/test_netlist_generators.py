"""Tests for the structural circuit generators and the ISCAS85 catalog."""

import pytest

from repro.cells import build_library
from repro.netlist import (
    alu_circuit,
    array_multiplier,
    ecc_circuit,
    expand_xors,
    iscas85,
    priority_controller,
    random_logic,
    scale_circuit,
)
from repro.netlist.generators import _CELL_ARITY
from repro.sim import constant_vector, evaluate


@pytest.fixture(scope="module")
def lib():
    return build_library()


class TestMultiplier:
    def test_profile(self, lib):
        c = array_multiplier(16)
        c.validate(lib)
        assert len(c.primary_inputs) == 32
        assert len(c.primary_outputs) == 32

    def test_small_multiplier_correct(self):
        c = array_multiplier(3, "m3")
        for a in range(8):
            for b in range(8):
                vec = {f"a{i}": (a >> i) & 1 for i in range(3)}
                vec.update({f"b{i}": (b >> i) & 1 for i in range(3)})
                values = evaluate(c, vec)
                got = sum(values[f"p{i}"] << i for i in range(6))
                assert got == a * b

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            array_multiplier(1)


class TestPriorityController:
    def test_profile(self, lib):
        c = priority_controller(36)
        c.validate(lib)
        assert len(c.primary_inputs) == 36
        assert len(c.primary_outputs) == 7

    def test_priority_semantics(self):
        c = priority_controller(8, "p8")
        # Request channels 3 and 5: channel 3 wins; code == 3, valid == 1.
        vec = constant_vector(c, 0)
        vec["req3"] = 1
        vec["req5"] = 1
        values = evaluate(c, vec)
        code = sum(values[f"code{b}"] << b for b in range(3))
        assert code == 3
        assert values["valid"] == 1

    def test_no_request_invalid(self):
        c = priority_controller(8, "p8")
        values = evaluate(c, constant_vector(c, 0))
        assert values["valid"] == 0

    def test_channel_zero_wins(self):
        c = priority_controller(8, "p8")
        values = evaluate(c, constant_vector(c, 1))
        code = sum(values[f"code{b}"] << b for b in range(3))
        assert code == 0
        assert values["valid"] == 1


class TestEcc:
    def test_profile(self, lib):
        c = ecc_circuit()
        c.validate(lib)
        assert len(c.primary_inputs) == 41
        assert len(c.primary_outputs) == 32

    def test_expanded_variant_has_no_xors(self, lib):
        c = ecc_circuit(name="c1355ish", expand_xor_to_nand=True)
        c.validate(lib)
        hist = c.cell_histogram()
        assert "XOR2" not in hist
        assert "XNOR2" not in hist

    def test_expansion_preserves_function(self):
        plain = ecc_circuit(data_bits=8, check_bits=4, name="e")
        expanded = expand_xors(plain)
        import random
        rng = random.Random(5)
        for _ in range(20):
            vec = {pi: rng.randint(0, 1) for pi in plain.primary_inputs}
            v1 = evaluate(plain, vec)
            v2 = evaluate(expanded, vec)
            for po in plain.primary_outputs:
                assert v1[po] == v2[po]


class TestAlu:
    def test_profile(self, lib):
        c = alu_circuit()
        c.validate(lib)
        assert len(c.primary_inputs) == 60
        assert len(c.primary_outputs) == 26


class TestRandomLogic:
    def test_deterministic(self):
        a = random_logic("r", 16, 4, 120, seed=11)
        b = random_logic("r", 16, 4, 120, seed=11)
        assert a.cell_histogram() == b.cell_histogram()
        assert [g.name for g in a.gates.values()] == [g.name for g in b.gates.values()]

    def test_different_seeds_differ(self):
        a = random_logic("r", 16, 4, 120, seed=11)
        b = random_logic("r", 16, 4, 120, seed=12)
        assert (a.cell_histogram() != b.cell_histogram()
                or [g.inputs for g in a.gates.values()]
                != [g.inputs for g in b.gates.values()])

    def test_every_pi_used(self, lib):
        c = random_logic("r", 40, 6, 200, seed=3)
        c.validate(lib)
        fanout = c.fanout()
        for pi in c.primary_inputs:
            assert fanout[pi], f"primary input {pi} unused"

    def test_every_gate_reaches_an_output(self):
        c = random_logic("r", 16, 4, 150, seed=5)
        cone = c.transitive_fanin(c.primary_outputs)
        assert set(c.gates) <= cone

    def test_gate_count_near_target(self):
        c = random_logic("r", 30, 10, 500, seed=8)
        assert 500 <= c.n_gates() <= 550

    def test_output_count_exact(self):
        for n_out in (1, 5, 17):
            c = random_logic("r", 20, n_out, 300, seed=n_out)
            assert len(c.primary_outputs) == n_out

    def test_rejects_bad_profile(self):
        with pytest.raises(ValueError):
            random_logic("r", 1, 1, 100, seed=0)
        with pytest.raises(ValueError):
            random_logic("r", 10, 8, 10, seed=0)


class TestRandomLogicArray:
    """The O(n) array engine: same invariants, bulk-RNG construction."""

    def test_deterministic(self):
        a = random_logic("r", 16, 4, 200, seed=11, engine="array")
        b = random_logic("r", 16, 4, 200, seed=11, engine="array")
        assert [(g.name, g.cell, tuple(g.inputs)) for g in a.gates.values()] \
            == [(g.name, g.cell, tuple(g.inputs)) for g in b.gates.values()]

    def test_seeds_differ(self):
        a = random_logic("r", 16, 4, 200, seed=11, engine="array")
        b = random_logic("r", 16, 4, 200, seed=12, engine="array")
        assert [g.inputs for g in a.gates.values()] \
            != [g.inputs for g in b.gates.values()]

    def test_output_count_exact_and_validates(self, lib):
        for n_out in (1, 5, 17):
            c = random_logic("r", 20, n_out, 300, seed=n_out, engine="array")
            c.validate(lib)
            assert len(c.primary_outputs) == n_out

    def test_rejects_bad_profiles(self):
        with pytest.raises(ValueError):
            random_logic("r", 3, 1, 100, seed=0, engine="array")
        with pytest.raises(ValueError):
            random_logic("r", 10, 8, 10, seed=0, engine="array")
        with pytest.raises(ValueError):
            random_logic("r", 16, 4, 100, seed=0, engine="nope")
        with pytest.raises(ValueError):
            random_logic("r", 200, 4, 150, seed=0, engine="array")

    def test_mix_respected(self):
        c = random_logic("r", 32, 8, 2000, seed=1,
                         mix={"NAND2": 1.0, "INV": 1.0}, engine="array")
        # Main-region gates only use mix cells; OR*/BUF absorb dangling.
        allowed = {"NAND2", "INV", "OR2", "OR3", "OR4", "BUF"}
        assert set(c.cell_histogram()) <= allowed

    def test_structural_invariants_at_50k(self, lib):
        n_target = 50_000
        c = scale_circuit(n_target, seed=7)
        # Gate count lands on the target within the dangling-absorption
        # slack; output profile is exact.
        assert n_target <= c.n_gates() <= 1.10 * n_target
        # Levelizable (acyclic with all fanins defined): a full
        # topological order exists and covers every gate.
        order = c.topological_order()
        assert len(order) == c.n_gates()
        # Fanin bounds: every gate's fanin count matches its cell arity.
        for g in c.gates.values():
            assert len(g.inputs) == _CELL_ARITY[g.cell], g.name
        # Unique gate/net names: PIs and gate outputs never collide.
        names = [g.name for g in c.gates.values()]
        assert len(set(names)) == len(names)
        assert not set(names) & set(c.primary_inputs)
        # Every PI consumed, every gate reaches a PO.
        used = set()
        for g in c.gates.values():
            used.update(g.inputs)
        assert set(c.primary_inputs) <= used
        assert set(c.gates) <= c.transitive_fanin(c.primary_outputs)
        c.validate(lib)

    def test_seed_reproducible_fingerprint_at_50k(self):
        from repro.artifacts.fingerprint import circuit_fingerprint

        a = scale_circuit(50_000, seed=7)
        b = scale_circuit(50_000, seed=7)
        assert circuit_fingerprint(a) == circuit_fingerprint(b)
        assert circuit_fingerprint(a) != circuit_fingerprint(
            scale_circuit(50_000, seed=8))


class TestIscasCatalog:
    def test_all_load_and_validate(self, lib):
        for name in iscas85.NAMES:
            c = iscas85.load(name)
            c.validate(lib)

    def test_io_profiles_match_published(self):
        for name, spec in iscas85.SPECS.items():
            c = iscas85.load(name)
            assert len(c.primary_inputs) == spec.inputs, name
            assert len(c.primary_outputs) == spec.outputs, name

    def test_gate_counts_within_band(self):
        # Stand-ins should be the same size class as the originals.
        for name, spec in iscas85.SPECS.items():
            c = iscas85.load(name)
            assert 0.5 * spec.gates <= c.n_gates() <= 1.6 * spec.gates, name

    def test_memoized(self):
        assert iscas85.load("c432") is iscas85.load("c432")

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="c432"):
            iscas85.load("c9999")

    def test_suite_loader(self):
        circuits = iscas85.load_suite(("c432", "c880"))
        assert [c.name for c in circuits] == ["c432", "c880"]
