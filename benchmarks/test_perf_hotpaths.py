"""Perf harness — array-native flow loops vs their scalar oracles.

Closes out the measured Python-loop hot paths: the three greedy flows
that historically assembled a ``TimingResult`` dict per trial now drive
their loops through :class:`~repro.sta.compiled.TimingSurface` and the
incremental timer, and the per-``(supply_drop, temperature)`` base-delay
compile is vectorized over the gate axis.  Four measurements, every one
asserting bit-identical results in-run:

* **Dual-Vth assignment** — ``assign_dual_vth`` compiled vs scalar on a
  shared pre-primed context (aging-model work excluded from both).
* **Aging-driven sizing** — ``size_for_aging`` likewise.
* **Control-point search** — ``greedy_control_points`` end to end; each
  round re-derives a context for the mutated circuit variant, so this
  row times the whole search loop including the per-variant lowering.
* **Base-delay grid** — the vectorized ``CompiledTiming.base_delays``
  compile over a RAS-drop x temperature grid against the retained
  serial ``cell.delay`` oracle, ``np.array_equal`` per grid point.

Default configuration is the acceptance-criterion run (c880 flows with
>= 3x bars, c7552 grid with >= 5x).  Set ``BENCH_SMOKE=1`` for a
seconds-scale CI smoke run (c432, speedup merely > 0.5x) that still
exercises the whole harness and emits ``BENCH_hotpaths.json``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from _common import emit, record_history
from repro import AnalysisContext
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.flow.dual_vth import assign_dual_vth
from repro.flow.sizing import size_for_aging
from repro.ivc.control_points import greedy_control_points
from repro.netlist import iscas85
from repro.sta.compiled import CompiledTiming

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
FLOW_CIRCUIT = "c432" if SMOKE else "c880"
MIN_SPEEDUP_DUAL_VTH = 0.5 if SMOKE else 8.0
MIN_SPEEDUP_SIZING = 0.5 if SMOKE else 3.0
MIN_SPEEDUP_CONTROL = 0.5 if SMOKE else 3.0
CONTROL_POINTS = 4 if SMOKE else 6
GRID_CIRCUIT = "c432" if SMOKE else "c7552"
MIN_SPEEDUP_GRID = 1.0 if SMOKE else 5.0
#: RAS-induced supply drops x standby temperatures — every pair is a
#: distinct memo key, so each point is a full fresh compile.
GRID_DROPS = (0.0, 0.02, 0.04, 0.06)
GRID_TEMPS = (300.0, 330.0, 370.0, 400.0)
PROFILE = OperatingProfile.from_ras("1:9", t_standby=330.0)
ARTIFACT = Path(__file__).with_name("BENCH_hotpaths.json")


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def run_perf_dual_vth():
    """High-Vth swap loop: surface/incremental trials vs scalar STA."""
    circuit = iscas85.load(FLOW_CIRCUIT)
    ctx = AnalysisContext(circuit)
    ctx.gate_shifts(PROFILE, TEN_YEARS)  # prime: exclude model work
    t_fast, fast = _timed(
        lambda: assign_dual_vth(circuit, context=ctx, engine="compiled"))
    t_slow, slow = _timed(
        lambda: assign_dual_vth(circuit, context=ctx, engine="scalar"))
    return {
        "circuit": FLOW_CIRCUIT,
        "n_gates": circuit.n_gates(),
        "scalar_seconds": t_slow,
        "compiled_seconds": t_fast,
        "speedup": t_slow / t_fast,
        "identical": fast == slow,
    }


def run_perf_sizing():
    """Greedy aging-driven sizing: incremental cone vs full re-walk."""
    circuit = iscas85.load(FLOW_CIRCUIT)
    ctx = AnalysisContext(circuit)
    ctx.gate_shifts(PROFILE, TEN_YEARS)
    t_fast, fast = _timed(
        lambda: size_for_aging(circuit, PROFILE, context=ctx,
                               engine="compiled"))
    t_slow, slow = _timed(
        lambda: size_for_aging(circuit, PROFILE, context=ctx,
                               engine="scalar"))
    return {
        "circuit": FLOW_CIRCUIT,
        "n_gates": circuit.n_gates(),
        "scalar_seconds": t_slow,
        "compiled_seconds": t_fast,
        "speedup": t_slow / t_fast,
        "identical": fast == slow,
    }


def run_perf_control_points():
    """Greedy control-point search, whole loop, both engines."""
    circuit = iscas85.load(FLOW_CIRCUIT)
    t_fast, fast = _timed(
        lambda: greedy_control_points(circuit, PROFILE, TEN_YEARS,
                                      max_points=CONTROL_POINTS,
                                      engine="compiled"))
    t_slow, slow = _timed(
        lambda: greedy_control_points(circuit, PROFILE, TEN_YEARS,
                                      max_points=CONTROL_POINTS,
                                      engine="scalar"))
    return {
        "circuit": FLOW_CIRCUIT,
        "max_points": CONTROL_POINTS,
        "controlled": len(fast.controlled),
        "scalar_seconds": t_slow,
        "compiled_seconds": t_fast,
        "speedup": t_slow / t_fast,
        "identical": fast == slow,
    }


def run_perf_base_grid():
    """Vectorized base-delay compile over a (drop, temperature) grid."""
    circuit = iscas85.load(GRID_CIRCUIT)
    compiled = CompiledTiming(circuit)
    grid = [(d, t) for d in GRID_DROPS for t in GRID_TEMPS]

    start = time.perf_counter()
    fast = [compiled.base_delays(drop, temp) for drop, temp in grid]
    t_fast = time.perf_counter() - start

    start = time.perf_counter()
    oracle = [compiled._base_delays_oracle(drop, temp)
              for drop, temp in grid]
    t_slow = time.perf_counter() - start

    identical = all(np.array_equal(a, b) for a, b in zip(fast, oracle))
    return {
        "circuit": GRID_CIRCUIT,
        "n_gates": circuit.n_gates(),
        "grid_points": len(grid),
        "scalar_seconds": t_slow,
        "vectorized_seconds": t_fast,
        "speedup": t_slow / t_fast,
        "identical": identical,
    }


def run_perf_hotpaths():
    return {
        "smoke": SMOKE,
        "dual_vth": run_perf_dual_vth(),
        "sizing": run_perf_sizing(),
        "control_points": run_perf_control_points(),
        "base_delay_grid": run_perf_base_grid(),
    }


BARS = {
    "dual_vth": MIN_SPEEDUP_DUAL_VTH,
    "sizing": MIN_SPEEDUP_SIZING,
    "control_points": MIN_SPEEDUP_CONTROL,
    "base_delay_grid": MIN_SPEEDUP_GRID,
}


def check(row):
    for name, bar in BARS.items():
        r = row[name]
        assert r["identical"], f"{name}: compiled diverged from scalar"
        assert r["speedup"] >= bar, (
            f"{name} only {r['speedup']:.1f}x faster (bar: {bar:.1f}x)")


def report(row):
    fast_key = {"base_delay_grid": "vectorized_seconds"}
    rows = []
    for name, bar in BARS.items():
        r = row[name]
        fast = r.get(fast_key.get(name, "compiled_seconds"))
        rows.append([name, r["circuit"], f"{r['scalar_seconds']:.3f}",
                     f"{fast:.3f}", f"{r['speedup']:.1f}x",
                     f"{bar:.1f}x", str(r["identical"])])
    emit("Array-native hot paths — scalar oracle vs compiled loop",
         ["loop", "circuit", "scalar (s)", "compiled (s)", "speedup",
          "bar", "identical"], rows)
    ARTIFACT.write_text(json.dumps(row, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    dv = row["dual_vth"]
    record_history("perf_hotpaths", wall_seconds=dv["compiled_seconds"],
                   speedup=dv["speedup"], smoke=row["smoke"])


def test_perf_hotpaths(run_once):
    row = run_once(run_perf_hotpaths)
    check(row)
    report(row)


if __name__ == "__main__":
    r = run_perf_hotpaths()
    check(r)
    report(r)
