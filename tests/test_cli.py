"""Tests for the command-line interface."""

import json
import logging

import pytest

from repro import __version__
from repro.cli import build_parser, main, resolve_circuit
from repro.obs import schema_errors


class TestResolveCircuit:
    def test_iscas_name(self):
        assert resolve_circuit("c432").name == "c432"

    def test_packaged_name(self):
        c = resolve_circuit("c17")
        assert c.n_gates() == 6

    def test_bench_path(self, tmp_path):
        path = tmp_path / "mini.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        c = resolve_circuit(str(path))
        assert c.name == "mini"

    def test_unknown_exits(self):
        with pytest.raises(SystemExit, match="unknown circuit"):
            resolve_circuit("c9999")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "c17"]) == 0
        out = capsys.readouterr().out
        assert "c17: 5 inputs, 2 outputs, 6 gates" in out
        assert "NAND2" in out

    def test_age_worst(self, capsys):
        assert main(["age", "c17", "--ras", "1:5", "--years", "10"]) == 0
        out = capsys.readouterr().out
        assert "degradation" in out
        assert "RAS 1:5" in out

    def test_age_best_below_worst(self, capsys):
        main(["age", "c17", "--t-standby", "400", "--standby", "worst"])
        worst = capsys.readouterr().out
        main(["age", "c17", "--t-standby", "400", "--standby", "best"])
        best = capsys.readouterr().out

        def deg(text):
            line = next(l for l in text.splitlines() if "degradation" in l)
            return float(line.split(":")[1].strip().rstrip("%"))

        assert deg(best) < deg(worst)

    def test_mlv(self, capsys):
        assert main(["mlv", "c17", "--vectors", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "chosen MLV" in out
        assert "aged degradation" in out

    def test_sleep_header(self, capsys):
        assert main(["sleep", "c17", "--beta", "0.03", "--nbti-aware"]) == 0
        out = capsys.readouterr().out
        assert "header dVth" in out
        assert "NBTI-aware sizing" in out

    def test_sleep_footer_no_header_line(self, capsys):
        assert main(["sleep", "c17", "--style", "footer"]) == 0
        out = capsys.readouterr().out
        assert "header dVth" not in out

    def test_guardband(self, capsys):
        assert main(["guardband", "--t-standby", "400"]) == 0
        out = capsys.readouterr().out
        assert "delay margin" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "330 K" in out and "400 K" in out
        assert "9:1" in out and "1:9" in out

    def test_paths(self, capsys):
        assert main(["paths", "c17", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "longest paths" in out
        assert out.count("->") >= 3

    def test_paths_aged(self, capsys):
        main(["paths", "c17", "-k", "1"])
        fresh = capsys.readouterr().out
        main(["paths", "c17", "-k", "1", "--aged", "--t-standby", "400"])
        aged = capsys.readouterr().out

        def top_delay(text):
            row = text.splitlines()[3]
            return float(row.split("|")[1])

        assert top_delay(aged) > top_delay(fresh)

    def test_table4(self, capsys):
        assert main(["table4", "c17"]) == 0
        out = capsys.readouterr().out
        assert "potential" in out
        assert "330 K" in out and "400 K" in out

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_info_reports_engines(self, capsys):
        assert main(["info", "c17"]) == 0
        out = capsys.readouterr().out
        assert f"repro {__version__}" in out
        assert "compiled STA/aging kernels: available" in out
        assert "packed bit-parallel simulation: available" in out
        assert "scalar oracle paths: available" in out

    def test_parser_help_lists_commands(self):
        parser = build_parser()
        help_text = parser.format_help()
        for cmd in ("info", "age", "mlv", "sleep", "guardband", "table1",
                    "paths", "table4", "sweep", "generate"):
            assert cmd in help_text


class TestGenerateCli:
    def test_same_seed_same_bytes(self, tmp_path, capsys):
        a, b = tmp_path / "a.bench", tmp_path / "b.bench"
        assert main(["generate", str(a), "--gates", "300",
                     "--seed", "5"]) == 0
        out_a = capsys.readouterr().out
        assert main(["generate", str(b), "--gates", "300",
                     "--seed", "5"]) == 0
        out_b = capsys.readouterr().out
        assert a.read_bytes() == b.read_bytes()

        def fingerprint(text):
            return next(line for line in text.splitlines()
                        if line.startswith("fingerprint"))

        assert fingerprint(out_a) == fingerprint(out_b)

    def test_seed_changes_netlist(self, tmp_path, capsys):
        a, b = tmp_path / "a.bench", tmp_path / "b.bench"
        main(["generate", str(a), "--gates", "300", "--seed", "0"])
        main(["generate", str(b), "--gates", "300", "--seed", "1"])
        capsys.readouterr()
        assert a.read_bytes() != b.read_bytes()

    def test_printed_stats_match_info_on_reload(self, tmp_path, capsys):
        # The reported profile describes the circuit *as written*, so
        # `repro info` on the file agrees even though the exporter
        # expands AOI/OAI cells into multi-gate decompositions.
        path = tmp_path / "g.bench"
        assert main(["generate", str(path), "--gates", "300"]) == 0
        gen = capsys.readouterr().out
        profile = next(line for line in gen.splitlines()
                       if line.startswith("profile"))
        counts = profile.split(":", 1)[1].split("(target")[0].strip()
        assert main(["info", str(path)]) == 0
        assert counts.rstrip(", ") in capsys.readouterr().out

    def test_custom_dims_and_name(self, tmp_path, capsys):
        path = tmp_path / "g.bench"
        assert main(["generate", str(path), "--gates", "300",
                     "--inputs", "16", "--outputs", "4",
                     "--name", "mychip"]) == 0
        out = capsys.readouterr().out
        assert "generated      : mychip" in out
        assert "16 inputs, 4 outputs" in out
        # .bench carries no name record: reloads are named by file stem.
        c = resolve_circuit(str(path))
        assert len(c.primary_inputs) == 16
        assert len(c.primary_outputs) == 4

    def test_generated_circuit_ages(self, tmp_path, capsys):
        path = tmp_path / "g.bench"
        assert main(["generate", str(path), "--gates", "300"]) == 0
        capsys.readouterr()
        assert main(["age", str(path), "--ras", "1:5",
                     "--years", "10"]) == 0
        assert "degradation" in capsys.readouterr().out


class TestShardedSweepCli:
    ARGS = ["--vectors", "8", "--set-size", "2", "--workers", "1"]

    def test_interrupted_then_resumed_is_byte_identical(self, tmp_path,
                                                        capsys):
        base = ["sweep", "c17", "c17", "c17"] + self.ARGS
        s1, s2 = str(tmp_path / "s1"), str(tmp_path / "s2")
        # Uninterrupted sharded run: the reference stdout.
        assert main(base + ["--store", s1, "--shards", "2"]) == 0
        reference = capsys.readouterr().out
        # Interrupted run: one shard, checkpoint, exit without a table.
        assert main(base + ["--store", s2, "--shards", "2",
                            "--max-shards", "1"]) == 0
        partial = capsys.readouterr()
        assert partial.out == ""
        assert "re-run with --resume" in partial.err
        # Resume: the completed table is byte-identical.
        assert main(base + ["--store", s2, "--shards", "2",
                            "--resume"]) == 0
        assert capsys.readouterr().out == reference

    def test_sharded_matches_flat_sweep(self, tmp_path, capsys):
        base = ["sweep", "c17", "c17"] + self.ARGS
        assert main(base) == 0
        flat = capsys.readouterr().out
        assert main(base + ["--store", str(tmp_path / "s"),
                            "--shards", "2"]) == 0
        assert capsys.readouterr().out == flat

    def test_shards_require_store(self, capsys):
        assert main(["sweep", "c17", "--shards", "2"] + self.ARGS) == 2
        assert "--shards requires --store" in capsys.readouterr().err


class TestObservabilityFlags:
    """--trace / --metrics / -v on any subcommand, before or after it."""

    def test_age_writes_trace_and_report(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        report = tmp_path / "report.json"
        assert main(["age", "c17", "--trace", str(trace),
                     "--metrics", str(report)]) == 0
        capsys.readouterr()  # command output, not under test here
        lines = [json.loads(line)
                 for line in trace.read_text().splitlines()]
        assert lines[0]["path"] == "repro.age"
        assert any(line["path"].startswith("repro.age/aging.")
                   for line in lines)
        doc = json.loads(report.read_text())
        assert schema_errors(doc) == []
        assert doc["label"] == "repro age"
        assert doc["meta"]["repro_version"] == __version__
        assert "aging.kernel.calls" in doc["metrics"]

    def test_flags_accepted_before_subcommand(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert main(["--metrics", str(report), "info", "c17"]) == 0
        capsys.readouterr()
        assert schema_errors(json.loads(report.read_text())) == []

    def test_no_flags_means_no_collection(self, capsys):
        from repro import obs

        assert main(["info", "c17"]) == 0
        capsys.readouterr()
        assert not obs.tracing_enabled()

    def test_verbose_configures_repro_logger(self, capsys):
        root = logging.getLogger("repro")
        before = list(root.handlers)
        old_level = root.level
        try:
            assert main(["-vv", "info", "c17"]) == 0
            assert root.level == logging.DEBUG
            added = [h for h in root.handlers if h not in before]
            assert added  # a real stderr handler beyond the NullHandler
        finally:
            for handler in list(root.handlers):
                if handler not in before:
                    root.removeHandler(handler)
            root.setLevel(old_level)

    def test_sweep_report_acceptance(self, tmp_path, capsys):
        # The ISSUE acceptance criterion: one CLI sweep emits a
        # schema-valid RunReport holding spans from the STA, aging, and
        # simulation kernels plus merged per-worker cache stats.
        report = tmp_path / "sweep.json"
        assert main(["sweep", "c17", "c17", "--vectors", "8",
                     "--workers", "2", "--metrics", str(report)]) == 0
        capsys.readouterr()
        doc = json.loads(report.read_text())
        assert schema_errors(doc) == []

        def walk(spans):
            for span in spans:
                yield span
                yield from walk(span.get("children", []))

        names = {s["name"] for s in walk(doc["spans"])}
        assert "flow.run_sweep" in names
        assert any(n.startswith("sta.compiled.") for n in names)
        assert any(n.startswith("aging.") for n in names)
        assert any(n.startswith("sim.packed.") for n in names)
        assert any(n.startswith("ivc.mlv.") for n in names)
        workers = {s["attributes"]["worker"] for s in walk(doc["spans"])
                   if "worker" in s.get("attributes", {})}
        assert workers == {0, 1}
        [entry] = doc["cache_stats"]  # both c17 workers merged
        assert entry["scope"] == "c17"
        assert entry["hits"] > 0 and entry["misses"] > 0
        assert doc["metrics"]["sta.analyze.engine"]["type"] == "counter"


class TestReportCli:
    """``repro report`` history / diff / timeline, and run recording."""

    @staticmethod
    def _report_file(tmp_path, name, duration):
        from repro.obs import RunReport

        span = {"name": "repro.age", "start": 0.0, "duration": duration,
                "attributes": {}, "children": []}
        path = tmp_path / name
        path.write_text(json.dumps(RunReport("cli", spans=[span]).to_dict()))
        return str(path)

    def test_age_with_store_records_runs(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        for _ in range(2):
            assert main(["age", "c17", "--store", store]) == 0
        err = capsys.readouterr().err
        assert err.count("run recorded:") == 2

        # The history lists both, oldest first; --ids is script-friendly.
        assert main(["report", "history", "--store", store, "--ids"]) == 0
        ids = capsys.readouterr().out.split()
        assert len(ids) == 2
        assert main(["report", "history", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "run history" in out and ids[0] in out

        # Cold run vs warm run: ids resolve against the store and the
        # gate passes (wide bands — two live sub-second runs are noise;
        # the strict gate is pinned on fixture reports below).
        assert main(["report", "diff", ids[0], ids[1], "--store", store,
                     "--span-abs", "60"]) == 0
        assert "verdict: PASS" in capsys.readouterr().out

        # The store's info view counts the new namespace.
        assert main(["cache", "info", "--store", store]) == 0
        assert "runs" in capsys.readouterr().out

    def test_history_empty_store(self, tmp_path, capsys):
        assert main(["report", "history", "--store",
                     str(tmp_path / "empty")]) == 0
        assert "no recorded runs" in capsys.readouterr().err

    def test_diff_gate_fails_on_inflated_span(self, tmp_path, capsys):
        a = self._report_file(tmp_path, "a.json", 0.1)
        b = self._report_file(tmp_path, "b.json", 5.1)
        assert main(["report", "diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "verdict: FAIL" in out and "repro.age" in out
        # Same pair inside tolerance: widened bands pass.
        assert main(["report", "diff", a, b, "--span-abs", "10",
                     "--span-rel", "100"]) == 0
        capsys.readouterr()

    def test_diff_json_output(self, tmp_path, capsys):
        a = self._report_file(tmp_path, "a.json", 0.1)
        assert main(["report", "diff", a, a, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["verdict"] == "pass"
        assert doc["regressions"] == 0
        assert all(e["status"] == "ok" for e in doc["entries"])

    def test_diff_unresolvable_input_exits_2(self, tmp_path, capsys):
        a = self._report_file(tmp_path, "a.json", 0.1)
        assert main(["report", "diff", a, str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_timeline_from_metrics_report(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        out = tmp_path / "trace.json"
        assert main(["age", "c17", "--metrics", str(report)]) == 0
        capsys.readouterr()
        assert main(["report", "timeline", str(report),
                     "--out", str(out)]) == 0
        assert "events)" in capsys.readouterr().err
        trace = json.loads(out.read_text())
        names = {e["name"] for e in trace["traceEvents"]
                 if e["ph"] == "X"}
        assert "repro.age" in names
        lanes = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["ph"] == "M"}
        assert "main" in lanes

    def test_timeline_stored_run_id(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["age", "c17", "--store", store]) == 0
        capsys.readouterr()
        assert main(["report", "history", "--store", store, "--ids"]) == 0
        [run_id] = capsys.readouterr().out.split()
        assert main(["report", "timeline", run_id, "--store", store]) == 0
        trace = json.loads(capsys.readouterr().out)
        assert trace["traceEvents"]

    def test_timeline_bad_input_exits_2(self, tmp_path, capsys):
        assert main(["report", "timeline", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err
