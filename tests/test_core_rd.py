"""Tests for the reaction-diffusion model (analytic + numerical)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DEFAULT_RD,
    RDParameters,
    interface_traps_after_recovery,
    interface_traps_dc,
    nit_prefactor,
    recovery_fraction,
)
from repro.core.rd_numerical import (
    RDNumericalConfig,
    fit_power_law_exponent,
    simulate_rd,
)


class TestAnalyticRD:
    def test_quarter_power_law(self):
        # N_it(16 t) = 2 N_it(t) under the t^(1/4) law.
        n1 = interface_traps_dc(1e4, 400.0)
        n2 = interface_traps_dc(16e4, 400.0)
        assert n2 == pytest.approx(2.0 * n1, rel=1e-9)

    def test_zero_time(self):
        assert interface_traps_dc(0.0, 400.0) == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            interface_traps_dc(-1.0, 400.0)

    def test_higher_temperature_more_traps(self):
        assert interface_traps_dc(1e6, 400.0) > interface_traps_dc(1e6, 330.0)

    def test_activation_energy_reduces_to_quarter_ed(self):
        # With E_f == E_r the overall activation is E_D/4 (eq. 16).
        assert DEFAULT_RD.activation_energy() == pytest.approx(DEFAULT_RD.ed / 4)

    def test_prefactor_arrhenius_consistency(self):
        # A(T2)/A(T1) should equal exp(-E_A/k (1/T2 - 1/T1)).
        from repro.constants import BOLTZMANN_EV
        a1 = nit_prefactor(330.0)
        a2 = nit_prefactor(400.0)
        ea = DEFAULT_RD.activation_energy()
        expected = math.exp(-(ea / BOLTZMANN_EV) * (1 / 400.0 - 1 / 330.0))
        assert a2 / a1 == pytest.approx(expected, rel=1e-9)

    def test_bad_temperature(self):
        with pytest.raises(ValueError):
            nit_prefactor(-5.0)


class TestRecovery:
    def test_no_recovery_at_zero_time(self):
        assert recovery_fraction(0.0, 100.0) == 1.0

    def test_half_after_equal_time(self):
        assert recovery_fraction(100.0, 100.0) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        fracs = [recovery_fraction(t, 50.0) for t in (0, 10, 50, 200, 1000)]
        assert fracs == sorted(fracs, reverse=True)

    def test_never_full_recovery(self):
        assert recovery_fraction(1e12, 1.0) > 0.0

    def test_guards(self):
        with pytest.raises(ValueError):
            recovery_fraction(1.0, 0.0)
        with pytest.raises(ValueError):
            recovery_fraction(-1.0, 1.0)

    def test_stress_then_recovery_below_dc(self):
        stressed = interface_traps_dc(1000.0, 400.0)
        relaxed = interface_traps_after_recovery(1000.0, 1000.0, 400.0)
        assert 0 < relaxed < stressed

    @given(st.floats(min_value=1e-3, max_value=1e6),
           st.floats(min_value=1e-3, max_value=1e6))
    @settings(max_examples=50)
    def test_property_fraction_in_unit_interval(self, tr, ts):
        assert 0.0 < recovery_fraction(tr, ts) <= 1.0


class TestNumericalRD:
    """The finite-difference solver must reproduce the analytic shapes."""

    def test_stress_follows_quarter_power(self):
        times, nit = simulate_rd([(200.0, True)])
        slope = fit_power_law_exponent(times, nit)
        assert 0.18 < slope < 0.32

    def test_recovery_removes_traps(self):
        times, nit = simulate_rd([(100.0, True), (100.0, False)],
                                 samples_per_phase=40)
        peak = nit[: len(nit) // 2 + 1].max()
        final = nit[-1]
        assert final < 0.9 * peak

    def test_recovery_partial_not_total(self):
        # Dynamic NBTI: recovery is partial (Fig. 1's message).
        _, nit = simulate_rd([(100.0, True), (300.0, False)],
                             samples_per_phase=40)
        assert nit[-1] > 0.0

    def test_ac_below_dc(self):
        schedule_ac = [(25.0, True), (25.0, False)] * 4
        _, nit_ac = simulate_rd(schedule_ac, samples_per_phase=10)
        _, nit_dc = simulate_rd([(200.0, True)], samples_per_phase=40)
        assert nit_ac[-1] < nit_dc[-1]

    def test_faster_diffusion_more_traps(self):
        hot = RDNumericalConfig(dh=80.0)
        cold = RDNumericalConfig(dh=20.0)
        _, nit_hot = simulate_rd([(100.0, True)], hot, samples_per_phase=10)
        _, nit_cold = simulate_rd([(100.0, True)], cold, samples_per_phase=10)
        assert nit_hot[-1] > nit_cold[-1]

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            simulate_rd([])

    def test_nonpositive_phase_rejected(self):
        with pytest.raises(ValueError):
            simulate_rd([(0.0, True)])

    def test_fit_needs_samples(self):
        with pytest.raises(ValueError):
            fit_power_law_exponent(np.array([0.0]), np.array([0.0]))
