"""Perf harness — content-addressed artifact warm starts.

Three measurements of the same full artifact build (compiled STA
kernel + base delays, packed simulator, aging plan, stress duties,
leakage table, one aged STA):

* **cold** — a fresh :class:`~repro.context.AnalysisContext` paying
  every lowering;
* **hydrate** — the same state seeded from an in-memory
  :class:`~repro.artifacts.bundle.ArtifactBundle`;
* **store** — bundle loaded from an on-disk
  :class:`~repro.artifacts.store.ArtifactStore` (npz read + manifest
  parse included), then hydrated.

All three must produce bit-identical aged delays, and the warm paths
must rebuild **zero** lowering artifacts (asserted on the context's
cache counters, not inferred from wall clock).  Default configuration
is the acceptance run (c7552); ``BENCH_SMOKE=1`` runs a seconds-scale
c432 pass with relaxed bars and still emits ``BENCH_artifacts.json``.
"""

import json
import os
import tempfile
import time
from pathlib import Path

from _common import emit, record_history
from repro import AnalysisContext
from repro.artifacts import ArtifactBundle, ArtifactStore
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.netlist import iscas85

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
CIRCUIT = "c432" if SMOKE else "c7552"
MIN_SPEEDUP_HYDRATE = 3.0 if SMOKE else 1.5
MIN_SPEEDUP_STORE = 2.0 if SMOKE else 1.2
PROFILE = OperatingProfile.from_ras("1:9", t_standby=330.0)
ARTIFACT = Path(__file__).with_name("BENCH_artifacts.json")

LOWERINGS = ("gate_loads", "compiled_timing", "packed_simulator",
             "stress_duties", "aging_plan", "leakage_table")


def _force_all(ctx):
    """Touch every artifact a bundle carries; returns the aged delay."""
    ctx.compiled_timing().base_delays()
    ctx.packed_simulator()
    ctx.aging_plan()
    ctx.stress_duties()
    ctx.leakage_table
    return ctx.aged_timing(PROFILE, TEN_YEARS).aged_delay


def run_perf_artifacts():
    circuit = iscas85.load(CIRCUIT)

    start = time.perf_counter()
    cold_ctx = AnalysisContext(circuit)
    cold_delay = _force_all(cold_ctx)
    t_cold = time.perf_counter() - start

    bundle = ArtifactBundle.snapshot(cold_ctx)

    start = time.perf_counter()
    hydrated = bundle.hydrate()
    hydrate_delay = _force_all(hydrated)
    t_hydrate = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as d:
        store = ArtifactStore(d)
        store.save_bundle(bundle)
        start = time.perf_counter()
        loaded = store.load_bundle(bundle.bundle_key).hydrate()
        store_delay = _force_all(loaded)
        t_store = time.perf_counter() - start
        stored_bytes = store.info()["bytes"]

    return {
        "smoke": SMOKE,
        "circuit": CIRCUIT,
        "n_gates": circuit.n_gates(),
        "cold_seconds": t_cold,
        "hydrate_seconds": t_hydrate,
        "store_seconds": t_store,
        "hydrate_speedup": t_cold / t_hydrate,
        "store_speedup": t_cold / t_store,
        "bundle_bytes": stored_bytes,
        "identical": (cold_delay == hydrate_delay
                      and cold_delay == store_delay),
        "hydrate_lowering_misses": sum(hydrated.stats.misses(n)
                                       for n in LOWERINGS),
        "store_lowering_misses": sum(loaded.stats.misses(n)
                                     for n in LOWERINGS),
    }


def check(row):
    assert row["identical"], \
        "hydrated artifacts diverged from the cold build"
    assert row["hydrate_lowering_misses"] == 0, \
        "in-memory hydration recompiled a lowering"
    assert row["store_lowering_misses"] == 0, \
        "store hydration recompiled a lowering"
    assert row["hydrate_speedup"] >= MIN_SPEEDUP_HYDRATE, (
        f"hydration only {row['hydrate_speedup']:.1f}x faster "
        f"(bar: {MIN_SPEEDUP_HYDRATE:.1f}x)")
    assert row["store_speedup"] >= MIN_SPEEDUP_STORE, (
        f"store warm start only {row['store_speedup']:.1f}x faster "
        f"(bar: {MIN_SPEEDUP_STORE:.1f}x)")


def report(row):
    emit(f"Artifact warm start — {row['circuit']}, "
         f"{row['n_gates']} gates",
         ["path", "wall (s)", "speedup"],
         [["cold build", f"{row['cold_seconds']:.3f}", "1.0x"],
          ["bundle hydrate", f"{row['hydrate_seconds']:.3f}",
           f"{row['hydrate_speedup']:.1f}x"],
          ["store round-trip", f"{row['store_seconds']:.3f}",
           f"{row['store_speedup']:.1f}x"]])
    print(f"bundle on disk: {row['bundle_bytes']:,} bytes; "
          f"recomputed lowerings (warm): "
          f"{row['hydrate_lowering_misses']}/{row['store_lowering_misses']}; "
          f"bit-identical: {row['identical']}")
    ARTIFACT.write_text(json.dumps(row, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    record_history("perf_artifacts", wall_seconds=row["hydrate_seconds"],
                   speedup=row["hydrate_speedup"], smoke=row["smoke"])


def test_perf_artifacts(run_once):
    row = run_once(run_perf_artifacts)
    check(row)
    report(row)


if __name__ == "__main__":
    r = run_perf_artifacts()
    check(r)
    report(r)
