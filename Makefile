# Convenience targets mirroring the CI jobs (see .github/workflows/ci.yml).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-perf lint all

# Tier-1: the full unit/integration suite (ROADMAP.md gate).
test:
	$(PYTHON) -m pytest -x -q

# The experiment harness: paper tables/figures + extension studies.
# Needs pytest-benchmark; -s shows the paper-style tables.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Kernel-vs-scalar perf harnesses (MLV, STA, aging, artifact warm
# starts, hot paths, scale axis) plus the disabled observability
# overhead bound; write the benchmarks/BENCH_*.json artifacts and
# append one summary line per suite to benchmarks/BENCH_history.jsonl.
# BENCH_SMOKE=1 for the seconds-scale CI variant.
bench-perf:
	$(PYTHON) -m pytest benchmarks/test_perf_mlv.py benchmarks/test_perf_sta.py benchmarks/test_perf_aging.py benchmarks/test_perf_obs.py benchmarks/test_perf_artifacts.py benchmarks/test_perf_hotpaths.py benchmarks/test_perf_scale.py --benchmark-only -q -s

lint:
	ruff check src tests benchmarks examples

all: test bench
