"""Gate-level combinational circuit model (substrate S3).

A :class:`Circuit` is the directed acyclic graph of Sec. 3.3: vertices
are library-cell instances, edges are named nets.  Following ISCAS
``.bench`` convention, each gate is named after the net it drives, so a
net name is either a primary-input name or a gate name.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cells.library import Library


@dataclass(frozen=True)
class Gate:
    """One cell instance.

    Attributes:
        name: the net this gate drives (unique in the circuit).
        cell: library cell name (e.g. ``"NAND2"``).
        inputs: driving net names, ordered to match the cell's pins.
    """

    name: str
    cell: str
    inputs: Tuple[str, ...]

    def __init__(self, name: str, cell: str, inputs: Sequence[str]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "cell", cell)
        object.__setattr__(self, "inputs", tuple(inputs))
        if not name:
            raise ValueError("gate needs a name")
        if not self.inputs:
            raise ValueError(f"gate {name!r} needs at least one input")


class CircuitError(Exception):
    """Structural problem in a circuit (cycle, undriven net, bad arity)."""


class Circuit:
    """A combinational netlist.

    Args:
        name: circuit name (e.g. ``"c432"``).
        primary_inputs: ordered PI net names.
        primary_outputs: ordered PO net names (each must be a gate or PI).
        gates: gate instances; evaluation order is derived, not assumed.
    """

    def __init__(self, name: str, primary_inputs: Sequence[str],
                 primary_outputs: Sequence[str], gates: Iterable[Gate]):
        self.name = name
        self.primary_inputs: Tuple[str, ...] = tuple(primary_inputs)
        self.primary_outputs: Tuple[str, ...] = tuple(primary_outputs)
        self.gates: Dict[str, Gate] = {}
        for gate in gates:
            if gate.name in self.gates:
                raise CircuitError(f"duplicate gate {gate.name!r}")
            if gate.name in self.primary_inputs:
                raise CircuitError(f"gate {gate.name!r} collides with a primary input")
            self.gates[gate.name] = gate
        self._check_structure()
        self._topo_cache: Optional[List[str]] = None
        self._fanout_cache: Optional[Dict[str, List[str]]] = None
        self._levels_cache: Optional[Dict[str, int]] = None
        self._nets_cache: Optional[frozenset] = None

    # -- structure ---------------------------------------------------------

    def _check_structure(self) -> None:
        pi_set = set(self.primary_inputs)
        if len(pi_set) != len(self.primary_inputs):
            raise CircuitError("duplicate primary input names")
        drivers = pi_set | set(self.gates)
        for gate in self.gates.values():
            for net in gate.inputs:
                if net not in drivers:
                    raise CircuitError(f"gate {gate.name!r} reads undriven net {net!r}")
        for po in self.primary_outputs:
            if po not in drivers:
                raise CircuitError(f"primary output {po!r} is undriven")

    @property
    def nets(self) -> Set[str]:
        """All net names: primary inputs plus every gate output.

        Cached (and returned as a frozenset) because callers iterate it
        inside per-vector loops; invalidated together with the other
        derived-structure caches by :meth:`invalidate_caches`.
        """
        if self._nets_cache is None:
            self._nets_cache = frozenset(self.primary_inputs) | frozenset(self.gates)
        return self._nets_cache

    def n_gates(self) -> int:
        """Number of gate instances."""
        return len(self.gates)

    def fanout(self) -> Dict[str, List[str]]:
        """Map net -> gate names reading it (POs not included).

        Cached like :meth:`topological_order`; the outer dict is copied
        per call, the per-net lists are shared and must not be mutated.
        """
        if self._fanout_cache is None:
            result: Dict[str, List[str]] = {net: [] for net in self.nets}
            for gate in self.gates.values():
                for net in gate.inputs:
                    result[net].append(gate.name)
            self._fanout_cache = result
        return dict(self._fanout_cache)

    def topological_order(self) -> List[str]:
        """Gate names in dependency order (Kahn's algorithm).

        Raises:
            CircuitError: if the netlist contains a combinational cycle.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        indegree: Dict[str, int] = {}
        for gate in self.gates.values():
            indegree[gate.name] = sum(1 for net in gate.inputs if net in self.gates)
        consumers = self.fanout()
        ready = deque(sorted(g for g, d in indegree.items() if d == 0))
        order: List[str] = []
        while ready:
            g = ready.popleft()
            order.append(g)
            for consumer in consumers.get(g, ()):
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self.gates):
            stuck = sorted(set(self.gates) - set(order))[:5]
            raise CircuitError(f"combinational cycle involving {stuck}")
        self._topo_cache = order
        return list(order)

    def levels(self) -> Dict[str, int]:
        """Logic level of each net: PIs at 0, gates at 1 + max(input levels).

        Cached like :meth:`topological_order`.
        """
        if self._levels_cache is None:
            level: Dict[str, int] = {pi: 0 for pi in self.primary_inputs}
            for name in self.topological_order():
                gate = self.gates[name]
                level[name] = 1 + max(level[net] for net in gate.inputs)
            self._levels_cache = level
        return dict(self._levels_cache)

    def invalidate_caches(self) -> None:
        """Drop every derived-structure cache (topo order, fanout, levels,
        nets).

        Must be called after any in-place netlist mutation; the mutation
        entry points (:meth:`replace_gate`) call it automatically.
        Holders of an :class:`repro.context.AnalysisContext` built on
        this circuit must additionally invalidate the context.
        """
        self._topo_cache = None
        self._fanout_cache = None
        self._levels_cache = None
        self._nets_cache = None

    def replace_gate(self, gate: Gate) -> None:
        """Swap the implementation of an existing gate in place.

        The mutation entry point used by sizing / cell-swap flows: the
        gate keeps its name (output net) but may change cell and input
        nets.  Structure is re-checked and all derived caches dropped.

        Raises:
            CircuitError: if no gate of that name exists, if the new
                inputs read undriven nets, or if the edit creates a
                combinational cycle.
        """
        if gate.name not in self.gates:
            raise CircuitError(f"no gate {gate.name!r} to replace")
        old = self.gates[gate.name]
        self.gates[gate.name] = gate
        self.invalidate_caches()
        try:
            self._check_structure()
            self.topological_order()
        except CircuitError:
            self.gates[gate.name] = old
            self.invalidate_caches()
            raise

    def content_fingerprint(self) -> str:
        """Structural content hash (name-independent, identity-free).

        Equal for any two circuits with the same PIs, POs, and gate
        rows in the same accumulation order — across renames, reloads,
        and process boundaries; changed by any structural edit
        (:meth:`replace_gate` included).  Not cached: mutation flows
        edit gates in place, and hashing is cheap relative to any
        artifact keyed by it.
        """
        from repro.artifacts.fingerprint import circuit_fingerprint

        return circuit_fingerprint(self)

    def depth(self) -> int:
        """Maximum logic level across all nets."""
        lv = self.levels()
        return max(lv.values()) if lv else 0

    def validate(self, library: Library) -> None:
        """Check every gate maps to a library cell with matching arity.

        Raises:
            CircuitError: on unknown cells or arity mismatches.
        """
        for gate in self.gates.values():
            if gate.cell not in library:
                raise CircuitError(f"gate {gate.name!r}: unknown cell {gate.cell!r}")
            expected = library.get(gate.cell).n_inputs
            if len(gate.inputs) != expected:
                raise CircuitError(
                    f"gate {gate.name!r}: cell {gate.cell} expects {expected} "
                    f"inputs, got {len(gate.inputs)}"
                )

    def cell_histogram(self) -> Dict[str, int]:
        """Count of instances per cell name."""
        hist: Dict[str, int] = {}
        for gate in self.gates.values():
            hist[gate.cell] = hist.get(gate.cell, 0) + 1
        return dict(sorted(hist.items()))

    def stats(self) -> Dict[str, int]:
        """Summary statistics used in reports and generator tests."""
        return {
            "inputs": len(self.primary_inputs),
            "outputs": len(self.primary_outputs),
            "gates": self.n_gates(),
            "depth": self.depth(),
        }

    def transitive_fanin(self, nets: Sequence[str]) -> Set[str]:
        """All nets (gates and PIs) in the fan-in cone of ``nets``."""
        seen: Set[str] = set()
        stack = list(nets)
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            gate = self.gates.get(net)
            if gate is not None:
                stack.extend(gate.inputs)
        return seen

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}, inputs={len(self.primary_inputs)}, "
                f"outputs={len(self.primary_outputs)}, gates={len(self.gates)})")
