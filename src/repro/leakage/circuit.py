"""Circuit-level standby leakage (substrate S8, paper eq. 24).

Sums per-gate leakage-table lookups over the standby state of the whole
netlist.  Two views:

* :func:`leakage_for_states` — one concrete standby state (a parked MLV),
* :func:`expected_leakage` — probability-weighted over input statistics,
  eq. (24)'s ``sum I_l(v, IN) Prob(v, IN)``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cells.leakage import LeakageTable
from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library, evaluate
from repro.sim.probability import propagate_probabilities


def leakage_for_states(circuit: Circuit, states: Dict[str, int],
                       table: LeakageTable) -> float:
    """Total leakage (amperes) with every net parked at ``states``.

    Raises:
        KeyError: if a gate input net has no state.
    """
    total = 0.0
    for gate in circuit.gates.values():
        bits = tuple(states[net] for net in gate.inputs)
        total += table.lookup(gate.cell, bits)
    return total


def leakage_for_vector(circuit: Circuit, pi_vector: Dict[str, int],
                       table: LeakageTable,
                       library: Optional[Library] = None, *,
                       context=None) -> float:
    """Total leakage with the circuit parked at a primary-input vector.

    Thin wrapper over the memoized evaluation layer: with ``context=``
    both the logic simulation and the summed lookup are cached per
    distinct vector (and the simulation is shared with aged-timing
    standby queries); a transient context is built otherwise.
    """
    if context is not None:
        context.adopt_leakage_table(table)
        if context.leakage_table is table:
            return context.leakage_for_vector(pi_vector)
    states = evaluate(circuit, pi_vector, library or default_library())
    return leakage_for_states(circuit, states, table)


def expected_leakage(circuit: Circuit, table: LeakageTable,
                     pi_one_prob: Optional[Dict[str, float]] = None,
                     library: Optional[Library] = None, *,
                     context=None) -> float:
    """Probability-weighted circuit leakage, eq. (24).

    Uses analytically propagated signal probabilities and per-gate pin
    independence — the paper's lookup-table estimator.  With
    ``context=`` the propagation and the weighted sum are memoized.
    """
    if context is not None:
        context.adopt_leakage_table(table)
        if context.leakage_table is table:
            return context.expected_leakage(pi_one_prob)
    library = library or default_library()
    probs = propagate_probabilities(circuit, pi_one_prob, library)
    total = 0.0
    for gate in circuit.gates.values():
        pin_probs = [probs[net] for net in gate.inputs]
        total += table.expected_leakage(gate.cell, pin_probs)
    return total


def leakage_bounds_sampled(circuit: Circuit, table: LeakageTable,
                           n_vectors: int = 256, seed: int = 0,
                           library: Optional[Library] = None
                           ) -> Dict[str, float]:
    """Min/max/mean leakage over a random vector sample.

    A quick profiling helper used in reports: the min is an upper bound
    on the true MLV leakage.
    """
    from repro.sim.vectors import random_vectors
    if n_vectors < 1:
        raise ValueError("need at least one vector")
    values = [leakage_for_vector(circuit, v, table, library)
              for v in random_vectors(circuit, n_vectors, seed)]
    return {"min": min(values), "max": max(values),
            "mean": sum(values) / len(values)}
