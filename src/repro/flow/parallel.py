"""Process-parallel benchmark sweep runner (Table 3 / Table 4 scale-out).

The paper's benchmark tables repeat one independent, CPU-bound analysis
per ISCAS85 circuit; this module fans those per-circuit analyses out
over a :class:`~concurrent.futures.ProcessPoolExecutor`, one worker per
circuit.  Design points:

* **Deterministic ordering** — results always come back in job order,
  regardless of which worker finishes first.
* **Byte-identical to serial** — workers run the very same module-level
  functions the serial path runs (each on a freshly loaded circuit and
  its own platform), so a parallel sweep and a ``max_workers=1`` sweep
  produce equal results, field for field.
* **Graceful serial fallback** — ``max_workers=1``, a pool that cannot
  be created (restricted environments), or a pool that breaks mid-run
  all degrade to an in-process loop.  Worker *logic* errors are not
  swallowed: they propagate with their original exception type.

Jobs are small frozen dataclasses naming the circuit.  By default the
parent lowers each distinct circuit **once** and ships the compiled
artifacts to the workers as an
:class:`~repro.artifacts.bundle.ArtifactBundle` (plain ndarrays/tuples,
cheap to pickle): a worker hydrates a warm
:class:`~repro.context.AnalysisContext` instead of re-running the
lowerings.  Hydrated state is bit-identical to rebuilt state, so the
pooled==serial and bundled==rebuilt (``ship_bundles=False``) results
are equal field for field.  An optional
:class:`~repro.artifacts.store.ArtifactStore` persists the bundles
across runs.
"""

from __future__ import annotations

import logging
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro import obs
from repro.constants import TEN_YEARS
from repro.core.profiles import OperatingProfile
from repro.netlist.circuit import Circuit

logger = logging.getLogger(__name__)

J = TypeVar("J")
R = TypeVar("R")


@dataclass
class WorkerObservation:
    """One worker's observability payload, shipped across the pool.

    Everything is plain dicts/lists (picklable, no live objects): the
    worker's span trees, its metrics snapshot, and the cache-stats
    entries of the contexts it built.
    """

    result: Any = None
    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    cache_stats: List[Dict[str, Any]] = field(default_factory=list)
    #: OS pid of the process that ran the job; the timeline exporter
    #: uses it to place genuinely cross-process spans on their own
    #: Perfetto lanes (serial runs stay attribute-free).
    pid: Optional[int] = None


class _ObservedWorker:
    """Picklable wrapper running a worker under fresh per-process
    observability state.

    Each call installs its own tracer, metrics registry, and cache
    scope — in a pool worker that isolates the payload per process; on
    the serial path it nests cleanly inside the parent's collection
    (the save/restore contextmanagers make both cases identical in
    structure).
    """

    def __init__(self, worker: Callable[[J], R]):
        self.worker = worker

    def __call__(self, job: J) -> WorkerObservation:
        tracer = obs.Tracer()
        registry = obs.MetricsRegistry()
        captured: List[Dict[str, Any]] = []
        with obs.use_tracer(tracer), obs.use_metrics(registry), \
                obs.cache_scope(captured):
            result = self.worker(job)
        return WorkerObservation(result=result, spans=tracer.span_dicts(),
                                 metrics=registry.snapshot(),
                                 cache_stats=captured, pid=os.getpid())


def load_circuit(name: str) -> Circuit:
    """Load a benchmark circuit by name (workers call this per process).

    Accepts ISCAS85 names (``c432`` ...), packaged netlists (``c17``),
    or a ``.bench`` file path.
    """
    from pathlib import Path

    from repro.netlist import iscas85, load_bench, load_packaged

    if name in iscas85.SPECS:
        return iscas85.load(name)
    try:
        return load_packaged(name)
    except FileNotFoundError:
        pass
    path = Path(name)
    if path.exists():
        return load_bench(path)
    raise ValueError(f"unknown circuit {name!r}")


def run_sweep(worker: Callable[[J], R], jobs: Sequence[J], *,
              max_workers: Optional[int] = None) -> List[R]:
    """Map ``worker`` over ``jobs``, one process per in-flight job.

    Args:
        worker: a picklable (module-level) function of one job.
        max_workers: pool size; ``None`` picks ``min(len(jobs),
            cpu_count)``; ``1`` runs serially in-process.

    Returns:
        Worker results in job order.

    Pool-infrastructure failures (a pool that cannot start or breaks
    mid-run, unpicklable jobs) fall back to the serial loop; exceptions
    raised *by the worker itself* propagate unchanged.

    When collection is active (:func:`repro.obs.tracing_enabled`), each
    worker runs under its own tracer/metrics/cache scope and its payload
    is merged back in **job order** — a pooled sweep and a serial sweep
    produce the same span structure, metric totals, and cache-stats
    list regardless of which worker finished first.
    """
    return _sweep_outcomes(worker, jobs, max_workers=max_workers,
                           finalize=_merge_observations)


def _sweep_outcomes(worker: Callable[[J], R], jobs: Sequence[J], *,
                    max_workers: Optional[int],
                    finalize: Callable[[List[Any], bool], Any]) -> Any:
    """The :func:`run_sweep` engine with a pluggable finalizer.

    ``finalize(outcomes, observed)`` runs inside the ``flow.run_sweep``
    span with the raw outcomes in job order — :func:`run_sweep` merges
    observation payloads immediately; the sharded runner keeps them raw
    so they can be checkpointed and merged on sweep completion.
    """
    jobs = list(jobs)
    if not jobs:
        return finalize([], obs.tracing_enabled())
    if max_workers is None:
        max_workers = min(len(jobs), os.cpu_count() or 1)

    observed = obs.tracing_enabled()
    call = _ObservedWorker(worker) if observed else worker

    def serial() -> Any:
        with obs.span("flow.run_sweep", jobs=len(jobs), pooled=False):
            return finalize([call(job) for job in jobs], observed)

    if max_workers <= 1:
        return serial()
    try:
        # Probe up front: an unpicklable worker/job would otherwise
        # surface from inside the pool's feeder thread with a
        # hard-to-catch exception type.  Jobs of one sweep are
        # structurally homogeneous, so probing the first is enough —
        # probing all of them would re-serialize every shipped bundle.
        pickle.dumps((call, jobs[0]))
    except Exception:
        logger.warning("run_sweep: jobs not picklable, running serially")
        return serial()
    try:
        with obs.span("flow.run_sweep", jobs=len(jobs), pooled=True,
                      max_workers=max_workers):
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = [pool.submit(call, job) for job in jobs]
                outcomes = [f.result() for f in futures]
            return finalize(outcomes, observed)
    except (OSError, NotImplementedError, ImportError,
            BrokenProcessPool, pickle.PicklingError):
        # The *pool* failed, not the analysis: degrade to serial.
        logger.warning("run_sweep: process pool unavailable, "
                       "falling back to serial execution")
        return serial()


def _merge_observations(outcomes: List[Any], observed: bool) -> List[Any]:
    """Unwrap :class:`WorkerObservation` payloads, merging in job order.

    Spans are adopted under the current span with a ``worker`` index
    attribute (plus the worker's OS ``pid`` when it differs from the
    parent's, i.e. a genuinely pooled run — serial sweeps stay
    pid-free, preserving pooled==serial span shapes), metric snapshots
    are folded into the installed registry, and cache-stats entries
    are re-registered in the parent scope.  Merge order is the job
    order of ``outcomes`` — deterministic by construction.
    """
    if not observed:
        return outcomes
    tracer = obs.get_tracer()
    registry = obs.get_metrics()
    results = []
    for i, payload in enumerate(outcomes):
        tracer.adopt(payload.spans, **_adoption_attrs(i, payload.pid))
        registry.merge(payload.metrics)
        for entry in payload.cache_stats:
            obs.register_cache_snapshot(entry)
        results.append(payload.result)
    return results


def _adoption_attrs(index: int, pid: Optional[int]) -> Dict[str, Any]:
    """Root attributes for adopted worker spans: worker index, and the
    worker's OS pid only when it crossed a process boundary."""
    attrs: Dict[str, Any] = {"worker": index}
    if pid is not None and pid != os.getpid():
        attrs["pid"] = pid
    return attrs


# -- bundle shipping ---------------------------------------------------------


def _bundle_for(name: str, store: Any = None):
    """Lower one circuit in the parent and snapshot its artifacts.

    With a store, the snapshot is served from (and persisted to) the
    content-addressed store; without one it is built in memory.
    """
    from repro.artifacts.bundle import ArtifactBundle
    from repro.context import AnalysisContext

    circuit = load_circuit(name)
    context = AnalysisContext(circuit, store=store)
    if store is not None:
        return context.save_to_store()
    return ArtifactBundle.snapshot(context)


def _bundles_for(names: Sequence[str], store: Any = None) -> List[Any]:
    """One bundle per job, lowering each *distinct* circuit only once."""
    built: Dict[str, Any] = {}
    out = []
    for name in names:
        if name not in built:
            built[name] = _bundle_for(name, store)
        out.append(built[name])
    return out


# -- Table 3: leakage/NBTI co-optimization per circuit -----------------------


@dataclass(frozen=True)
class CoOptimizationJob:
    """One circuit's co-optimization run (the Table 3 recipe).

    ``bundle`` optionally carries the parent's compiled artifacts; a
    worker that receives one hydrates a warm context instead of
    re-lowering the circuit.  It is excluded from equality/repr — two
    jobs describing the same run compare equal whether or not artifacts
    ride along.
    """

    circuit: str
    profile: OperatingProfile
    lifetime: float = TEN_YEARS
    n_vectors: int = 64
    max_set_size: int = 8
    range_fraction: float = 0.04
    seed: int = 0
    bundle: Optional[Any] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class SweepRow:
    """Per-circuit outcome of a co-optimization sweep (one Table 3 row).

    Delays in seconds, leakages in amperes, degradations fractional.
    """

    name: str
    fresh_delay: float
    min_degradation: float
    mlv_diff: float
    worst_degradation: float
    leakage_reduction: float
    set_size: int
    chosen_bits: Tuple[int, ...]
    chosen_leakage: float
    expected_leakage: float
    evaluated: int


def co_optimize_circuit(job: CoOptimizationJob) -> SweepRow:
    """Worker: full co-optimization + worst-case bound for one circuit.

    With ``job.bundle`` set, the worker hydrates the shipped artifacts
    (bit-identical to rebuilding) and adopts them into its platform;
    otherwise it loads and lowers the circuit itself.
    """
    from repro.flow.platform import AnalysisPlatform
    from repro.sta.degradation import ALL_ZERO

    if job.bundle is not None:
        context = job.bundle.hydrate()
        circuit = context.circuit
        platform = AnalysisPlatform(library=context.library)
        platform.adopt_context(context)
    else:
        circuit = load_circuit(job.circuit)
        platform = AnalysisPlatform()
    co = platform.co_optimize(circuit, job.profile, job.lifetime,
                              n_vectors=job.n_vectors,
                              max_set_size=job.max_set_size,
                              range_fraction=job.range_fraction,
                              seed=job.seed)
    worst = platform.analyzer.aged_timing(
        circuit, job.profile, job.lifetime, standby=ALL_ZERO,
        context=platform.context_for(circuit))
    chosen = co.selection.chosen
    return SweepRow(
        name=job.circuit,
        fresh_delay=co.selection.fresh_delay,
        min_degradation=co.chosen_degradation,
        mlv_diff=co.mlv_delay_spread,
        worst_degradation=worst.relative_degradation,
        leakage_reduction=co.leakage_reduction,
        set_size=len(co.selection.records),
        chosen_bits=chosen.bits,
        chosen_leakage=chosen.leakage,
        expected_leakage=co.expected_leakage,
        evaluated=co.search.evaluated,
    )


def run_co_optimization_sweep(circuits: Sequence[str],
                              profile: OperatingProfile,
                              lifetime: float = TEN_YEARS, *,
                              n_vectors: int = 64,
                              max_set_size: int = 8,
                              range_fraction: float = 0.04,
                              seed: int = 0,
                              max_workers: Optional[int] = None,
                              ship_bundles: bool = True,
                              store: Any = None) -> List[SweepRow]:
    """Co-optimize many circuits, one worker per circuit.

    Returns one :class:`SweepRow` per circuit, in input order;
    ``max_workers=1`` runs the identical computation serially.

    With ``ship_bundles`` (the default) the parent lowers each distinct
    circuit once and ships the compiled artifacts to the workers;
    ``ship_bundles=False`` restores the rebuild-per-worker path (the
    two are bit-identical).  ``store`` optionally persists/serves the
    parent's bundles through an
    :class:`~repro.artifacts.store.ArtifactStore`.
    """
    bundles = (_bundles_for(circuits, store) if ship_bundles
               else [None] * len(circuits))
    jobs = [CoOptimizationJob(circuit=name, profile=profile,
                              lifetime=lifetime, n_vectors=n_vectors,
                              max_set_size=max_set_size,
                              range_fraction=range_fraction, seed=seed,
                              bundle=bundle)
            for name, bundle in zip(circuits, bundles)]
    return run_sweep(co_optimize_circuit, jobs, max_workers=max_workers)


# -- sharded, resumable sweeps ----------------------------------------------

#: Shard checkpoint payload layout version.
SHARD_SCHEMA = 1


def shard_jobs(n_jobs: int, n_shards: int) -> List[Tuple[int, ...]]:
    """Deterministic round-robin job-index partition.

    Shard ``k`` owns indices ``k, k + n_shards, k + 2*n_shards, ...``;
    exactly ``n_shards`` tuples come back (trailing ones empty when
    there are fewer jobs than shards).  Round-robin keeps every shard's
    load representative of the whole sweep — a sorted-by-size job list
    does not put all the big circuits in the last shard.
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    return [tuple(range(k, n_jobs, n_shards)) for k in range(n_shards)]


@dataclass(frozen=True)
class ShardedSweepResult:
    """Outcome of one :func:`run_sharded_sweep` invocation.

    ``rows`` is populated (results in original job order) only when
    every shard is checkpointed; a partial run returns ``rows=None``
    and the caller re-invokes with ``resume=True`` to continue.
    """

    rows: Optional[List[Any]]
    total_shards: int
    completed_shards: Tuple[int, ...]
    ran_shards: Tuple[int, ...]
    resumed_shards: Tuple[int, ...]

    @property
    def complete(self) -> bool:
        return len(self.completed_shards) == self.total_shards


def _identity(value: Any) -> Any:
    return value


def run_sharded_sweep(worker: Callable[[J], R], jobs: Sequence[J], *,
                      store: Any, sweep_key: str, n_shards: int,
                      resume: bool = False,
                      max_shards_per_run: Optional[int] = None,
                      max_workers: Optional[int] = None,
                      encode: Callable[[R], Any] = _identity,
                      decode: Callable[[Any], R] = _identity,
                      prepare: Optional[Callable[[List[J]], List[J]]] = None
                      ) -> ShardedSweepResult:
    """Run ``jobs`` in deterministic shards with per-shard checkpoints.

    Each completed shard is written atomically to ``store`` (under
    ``sweeps/<sweep_key>/``) as JSON: encoded results plus, when
    collection is active, the workers' observation payloads.  A killed
    sweep loses at most the in-flight shard; ``resume=True`` loads the
    finished shards and runs only the missing ones, and the assembled
    results are field-for-field identical to an uninterrupted run
    (JSON round-trips floats exactly).

    On completion the checkpointed observation payloads are merged in
    **original job order** — the same pooled==serial semantics as
    :func:`run_sweep`, now additionally invariant to how the sweep was
    split or interrupted.

    Args:
        store: an :class:`~repro.artifacts.store.ArtifactStore`.
        sweep_key: content key naming this sweep's parameters; a new
            key starts a fresh checkpoint directory.
        n_shards: total shards (see :func:`shard_jobs`).
        resume: load existing checkpoints instead of clearing them.
        max_shards_per_run: stop (checkpointed) after running this many
            pending shards — the clean interruption mechanism.
        encode / decode: JSON (de)serializers for one worker result.
        prepare: optional per-shard job hook (e.g. bundle attachment),
            called only for shards that actually run.
    """
    jobs = list(jobs)
    if store is None:
        raise ValueError("sharded sweeps need an artifact store")
    shards = shard_jobs(len(jobs), n_shards)
    if not resume:
        store.clear_sweep(sweep_key)
    payloads: Dict[int, Dict[str, Any]] = {}
    resumed: List[int] = []
    if resume:
        for k in store.list_shards(sweep_key):
            payload = store.load_shard(sweep_key, k)
            if (payload is None or payload.get("schema") != SHARD_SCHEMA
                    or payload.get("total_shards") != n_shards):
                continue  # unreadable/stale checkpoint: recompute it
            payloads[k] = payload
            resumed.append(k)
    budget = n_shards if max_shards_per_run is None else max_shards_per_run
    ran: List[int] = []
    with obs.span("flow.sharded_sweep", sweep=sweep_key[:12],
                  shards=n_shards, resume=resume):
        for k, indices in enumerate(shards):
            if k in payloads:
                continue
            if len(ran) >= budget:
                break
            shard_input = [jobs[i] for i in indices]
            if prepare is not None:
                shard_input = prepare(shard_input)
            with obs.span("flow.sweep_shard", shard=k, jobs=len(indices)):
                outcomes, observed = _sweep_outcomes(
                    worker, shard_input, max_workers=max_workers,
                    finalize=lambda out, ob: (list(out), ob))
            if observed:
                results = [encode(o.result) for o in outcomes]
                observations: Optional[List[Dict[str, Any]]] = [
                    {"spans": o.spans, "metrics": o.metrics,
                     "cache_stats": o.cache_stats, "pid": o.pid}
                    for o in outcomes]
            else:
                results = [encode(o) for o in outcomes]
                observations = None
            payload = {"schema": SHARD_SCHEMA, "sweep_key": sweep_key,
                       "shard": k, "total_shards": n_shards,
                       "job_indices": list(indices), "results": results,
                       "observations": observations}
            store.save_shard(sweep_key, k, payload)
            payloads[k] = payload
            ran.append(k)
        rows = (_assemble_sharded(payloads, len(jobs), decode)
                if len(payloads) == n_shards else None)
    return ShardedSweepResult(rows=rows, total_shards=n_shards,
                              completed_shards=tuple(sorted(payloads)),
                              ran_shards=tuple(ran),
                              resumed_shards=tuple(sorted(resumed)))


def _assemble_sharded(payloads: Dict[int, Dict[str, Any]], n_jobs: int,
                      decode: Callable[[Any], Any]) -> List[Any]:
    """Decode checkpointed shards into job order, merging observations.

    Observation payloads (when the shards were run under collection)
    are adopted/merged **by ascending job index**, exactly like
    :func:`_merge_observations` does for a flat sweep — the final
    RunReport does not depend on shard layout or interruption history.
    """
    entries: Dict[int, Tuple[Any, Optional[Dict[str, Any]]]] = {}
    for k in sorted(payloads):
        payload = payloads[k]
        observations = payload.get("observations")
        for slot, i in enumerate(payload["job_indices"]):
            entries[i] = (payload["results"][slot],
                          observations[slot] if observations else None)
    if len(entries) != n_jobs:
        raise ValueError(
            f"shard checkpoints cover {len(entries)} of {n_jobs} jobs")
    merge = obs.tracing_enabled()
    tracer = obs.get_tracer() if merge else None
    registry = obs.get_metrics() if merge else None
    rows = []
    for i in range(n_jobs):
        encoded, observation = entries[i]
        rows.append(decode(encoded))
        if merge and observation is not None:
            tracer.adopt(observation["spans"],
                         **_adoption_attrs(i, observation.get("pid")))
            registry.merge(observation["metrics"])
            for entry in observation["cache_stats"]:
                obs.register_cache_snapshot(entry)
    return rows


def _encode_row(row: SweepRow) -> Dict[str, Any]:
    """One :class:`SweepRow` as a JSON-able dict (bits as a list)."""
    from dataclasses import asdict

    payload = asdict(row)
    payload["chosen_bits"] = list(row.chosen_bits)
    return payload


def _decode_row(payload: Dict[str, Any]) -> SweepRow:
    """Inverse of :func:`_encode_row`; floats round-trip exactly."""
    data = dict(payload)
    data["chosen_bits"] = tuple(data["chosen_bits"])
    return SweepRow(**data)


def co_optimization_sweep_key(circuits: Sequence[str],
                              profile: OperatingProfile,
                              lifetime: float, *, n_vectors: int,
                              max_set_size: int, range_fraction: float,
                              seed: int, n_shards: int) -> str:
    """Content key of one sharded co-optimization sweep's parameters.

    Any parameter change (including the shard count, which fixes the
    job partition) yields a fresh key and hence a fresh checkpoint
    directory — stale shards are never *wrong*, only unreferenced.
    """
    from repro.artifacts.fingerprint import scenario_key

    return scenario_key({
        "command": "co-optimization-sweep",
        "circuits": list(circuits),
        "ras": profile.ras_label(),
        "t_active": profile.t_active,
        "t_standby": profile.t_standby,
        "lifetime": lifetime,
        "n_vectors": n_vectors,
        "max_set_size": max_set_size,
        "range_fraction": range_fraction,
        "seed": seed,
        "n_shards": n_shards,
    })


def run_sharded_co_optimization_sweep(
        circuits: Sequence[str], profile: OperatingProfile,
        lifetime: float = TEN_YEARS, *, store: Any, n_shards: int,
        resume: bool = False, max_shards_per_run: Optional[int] = None,
        n_vectors: int = 64, max_set_size: int = 8,
        range_fraction: float = 0.04, seed: int = 0,
        max_workers: Optional[int] = None,
        ship_bundles: bool = True) -> ShardedSweepResult:
    """:func:`run_co_optimization_sweep` with shard checkpoints.

    A complete (possibly resumed) run's ``rows`` are field-for-field
    identical to the flat sweep's; bundles are lowered only for the
    circuits of the shards that actually run in this invocation.
    """
    from dataclasses import replace

    jobs = [CoOptimizationJob(circuit=name, profile=profile,
                              lifetime=lifetime, n_vectors=n_vectors,
                              max_set_size=max_set_size,
                              range_fraction=range_fraction, seed=seed)
            for name in circuits]
    sweep_key = co_optimization_sweep_key(
        circuits, profile, lifetime, n_vectors=n_vectors,
        max_set_size=max_set_size, range_fraction=range_fraction,
        seed=seed, n_shards=n_shards)
    built: Dict[str, Any] = {}

    def prepare(shard_input: List[CoOptimizationJob]
                ) -> List[CoOptimizationJob]:
        if not ship_bundles:
            return shard_input
        for job in shard_input:
            if job.circuit not in built:
                built[job.circuit] = _bundle_for(job.circuit, store)
        return [replace(job, bundle=built[job.circuit])
                for job in shard_input]

    return run_sharded_sweep(
        co_optimize_circuit, jobs, store=store, sweep_key=sweep_key,
        n_shards=n_shards, resume=resume,
        max_shards_per_run=max_shards_per_run, max_workers=max_workers,
        encode=_encode_row, decode=_decode_row, prepare=prepare)


# -- Table 4: internal-node-control potential per circuit --------------------


@dataclass(frozen=True)
class PotentialSweepJob:
    """One circuit's standby-temperature potential sweep (Table 4).

    ``bundle`` works as on :class:`CoOptimizationJob`: optional shipped
    artifacts, excluded from equality/repr.
    """

    circuit: str
    t_standby_values: Tuple[float, ...]
    ras: str = "1:9"
    t_total: float = TEN_YEARS
    bundle: Optional[Any] = field(default=None, compare=False, repr=False)


def potential_sweep_circuit(job: PotentialSweepJob) -> list:
    """Worker: the Table 4 temperature sweep for one circuit."""
    from repro.context import AnalysisContext
    from repro.ivc.internal_node import potential_sweep

    if job.bundle is not None:
        context = job.bundle.hydrate()
        circuit = context.circuit
    else:
        circuit = load_circuit(job.circuit)
        context = AnalysisContext(circuit)
    return potential_sweep(circuit, job.t_standby_values, ras=job.ras,
                           t_total=job.t_total, context=context)


def run_potential_sweep(circuits: Sequence[str],
                        t_standby_values: Sequence[float],
                        ras: str = "1:9",
                        t_total: float = TEN_YEARS, *,
                        max_workers: Optional[int] = None,
                        ship_bundles: bool = True,
                        store: Any = None) -> Dict[str, list]:
    """Table 4 sweeps for many circuits, one worker per circuit.

    Returns ``{circuit name: [InternalNodePotential, ...]}`` preserving
    input order (dict insertion order).  ``ship_bundles``/``store`` as
    on :func:`run_co_optimization_sweep`.
    """
    bundles = (_bundles_for(circuits, store) if ship_bundles
               else [None] * len(circuits))
    jobs = [PotentialSweepJob(circuit=name,
                              t_standby_values=tuple(t_standby_values),
                              ras=ras, t_total=t_total, bundle=bundle)
            for name, bundle in zip(circuits, bundles)]
    results = run_sweep(potential_sweep_circuit, jobs,
                        max_workers=max_workers)
    return dict(zip(circuits, results))
