"""Bit-packed batch logic simulation (substrate S4, fast path).

Classic bit-parallel simulation: the value of one net across a whole
population of input vectors is a *bit string* — vector ``j`` is bit
``j`` — so a single bitwise operation evaluates a gate for every vector
at once.  A :class:`PackedSimulator` compiles a circuit once against a
library: each gate becomes a specialized word operation (AND/OR/NAND/
NOR/XOR/XNOR/NOT/BUF, recognized from the cell's truth table) or a
generic sum-of-minterms fallback for complex cells (AOI/OAI), and the
compiled program is replayed over arbitrarily many batches.

The packed values live in Python integers (arbitrary-width bit strings):
for the 64-vector rounds of the MLV search a net is a single machine
word, and for larger populations CPython's big-int bitwise kernels keep
the per-gate dispatch cost constant.  Inverting ops use ``mask ^ x``
(not ``~x``), so padding bits beyond the population stay zero and
popcounts need no correction.

On top of the simulator sits the vectorized population leakage kernel:
per-gate packed input-state indices gathered out of per-cell leakage
LUTs, accumulated gate by gate in the exact order (and therefore the
exact floating-point rounding) of the scalar
:func:`repro.leakage.circuit.leakage_for_states` path, so batch and
scalar leakage agree bit for bit.

Semantics come from the same source as :func:`repro.sim.logic.evaluate`
(the library truth tables), which the equivalence suite in
``tests/test_sim_packed.py`` pins on every ISCAS85 netlist.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.cells.leakage import LeakageTable
from repro.cells.library import Library
from repro.netlist.circuit import Circuit

#: Vectors per machine word of the packed representation (the natural
#: batch granularity; any population size works).
WORD_BITS = 64

#: Population chunk size of the leakage kernel: bounds peak memory at
#: roughly ``n_nets * _CHUNK`` unpacked bytes per batch.
_CHUNK = 8192

#: A population of input vectors: a 2D 0/1 array of shape
#: ``(n_vectors, n_primary_inputs)`` or any nested sequence that
#: converts to one (e.g. a list of PI bit tuples).
Population = Union[np.ndarray, Sequence[Sequence[int]]]


def pack_matrix(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, n)`` 0/1 matrix into ``(rows, ceil(n/64))`` words.

    Bit ``j`` of a row lands in word ``j // 64`` at in-word position
    ``j % 64``; the padding bits of the last word are zero.
    """
    b = np.ascontiguousarray(bits, dtype=np.uint8)
    packed = np.packbits(b, axis=-1, bitorder="little")
    pad = (-packed.shape[-1]) % 8
    if pad:
        widths = [(0, 0)] * (packed.ndim - 1) + [(0, pad)]
        packed = np.pad(packed, widths)
    return packed.view(np.uint64)


def unpack_matrix(words: np.ndarray, count: int) -> np.ndarray:
    """Inverse of :func:`pack_matrix`: the first ``count`` bits per row."""
    return np.unpackbits(words.view(np.uint8), axis=-1, count=count,
                         bitorder="little")


def _parity_lut(n_inputs: int) -> np.ndarray:
    index = np.arange(2 ** n_inputs, dtype=np.uint32)
    return (np.bitwise_count(index) & 1).astype(np.uint8)


def _classify(lut: np.ndarray) -> str:
    """Name the word operation implementing a truth-table LUT."""
    n = len(lut)
    ones = int(lut.sum())
    if n == 2:
        if lut[0] == 1 and lut[1] == 0:
            return "not"
        if lut[0] == 0 and lut[1] == 1:
            return "buf"
        return "lut"
    if ones == 1 and lut[-1] == 1:
        return "and"
    if ones == n - 1 and lut[0] == 0:
        return "or"
    if ones == n - 1 and lut[-1] == 0:
        return "nand"
    if ones == 1 and lut[0] == 1:
        return "nor"
    parity = _parity_lut(n.bit_length() - 1)
    if np.array_equal(lut, parity):
        return "xor"
    if np.array_equal(lut, 1 - parity):
        return "xnor"
    return "lut"


# Opcode numbers of the compiled program (dispatch is an if-chain over
# small ints in the hot loop; the <= comparisons below rely on this
# exact ordering).
_AND, _OR, _XOR, _NAND, _NOR, _XNOR, _NOT, _BUF, _LUT = range(9)

_OPCODE = {"and": _AND, "or": _OR, "xor": _XOR, "nand": _NAND,
           "nor": _NOR, "xnor": _XNOR, "not": _NOT, "buf": _BUF,
           "lut": _LUT}

#: Inverting op -> its monotone base reduction.
_INVERTING = {_NAND: _AND, _NOR: _OR, _XNOR: _XOR}


class PackedSimulator:
    """Compiled bit-parallel evaluator of one ``(Circuit, Library)`` pair.

    Building one is a per-circuit cost (truth-table classification and
    row assignment); every subsequent batch replays the compiled
    program.  Share instances through
    :meth:`repro.context.AnalysisContext.packed_simulator`.
    """

    def __init__(self, circuit: Circuit, library: Optional[Library] = None):
        from repro.sim.logic import _cell_lut, default_library

        obs.count("sim.packed.compiles")
        with obs.span("sim.packed.compile", circuit=circuit.name):
            self._compile_all(circuit, library, _cell_lut, default_library)

    def _compile_all(self, circuit: Circuit, library: Optional[Library],
                     _cell_lut, default_library) -> None:
        """The one-time program compilation (spanned by ``__init__``)."""
        order = self._bind_layout(circuit, library, default_library)
        self._ops = [self._compile(circuit.gates[name], _cell_lut)
                     for name in order]

    def _bind_layout(self, circuit: Circuit, library: Optional[Library],
                     default_library) -> List[str]:
        """Cheap row/layout binding; returns the gate compile order."""
        self.circuit = circuit
        self.library = library or default_library()
        order = circuit.topological_order()
        #: Net evaluation order: primary inputs first, then gate
        #: outputs topologically.
        self.net_names: List[str] = list(circuit.primary_inputs) + order
        self.row: Dict[str, int] = {n: i for i, n in
                                    enumerate(self.net_names)}
        self.n_pis = len(circuit.primary_inputs)
        # Gate-order arrays for the leakage kernel; iteration follows
        # circuit.gates so the float accumulation order matches the
        # scalar leakage_for_states sum exactly.
        gates = list(circuit.gates.values())
        self._gate_cells = [g.cell for g in gates]
        self._max_arity = max((len(g.inputs) for g in gates), default=1)
        # Unused input slots point at a dummy all-zero row appended to
        # the unpacked value matrix.
        self._gate_in_rows = np.full((len(gates), self._max_arity),
                                     len(self.net_names), dtype=np.intp)
        for gi, gate in enumerate(gates):
            for k, net in enumerate(gate.inputs):
                self._gate_in_rows[gi, k] = self.row[net]
        return order

    # -- snapshot / hydrate --------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """The compiled program as plain lists (picklable, JSON-able).

        Only ``_ops`` needs shipping — truth-table classification is the
        expensive part; the row layout rebinds from the circuit.
        """
        ops = []
        for code, out, ins, extra in self._ops:
            if extra is None:
                ops.append([code, out, list(ins), None])
            else:
                products, invert = extra
                ops.append([code, out, list(ins),
                            [[[row, pos] for row, pos in product]
                             for product in products],
                            bool(invert)])
        return {"net_names": list(self.net_names), "ops": ops}

    @classmethod
    def from_state(cls, circuit: Circuit, library: Optional[Library],
                   state) -> "PackedSimulator":
        """Hydrate a compiled simulator from :meth:`export_state` output."""
        from repro.sim.logic import default_library

        self = cls.__new__(cls)
        with obs.span("sim.packed.hydrate", circuit=circuit.name):
            self._bind_layout(circuit, library, default_library)
            if list(state["net_names"]) != self.net_names:
                raise ValueError(
                    "packed-simulator state does not match the circuit "
                    "(net order differs)")
            ops = []
            for entry in state["ops"]:
                code, out, ins = int(entry[0]), int(entry[1]), entry[2]
                if entry[3] is None:
                    extra = None
                else:
                    products = tuple(
                        tuple((int(row), int(pos)) for row, pos in product)
                        for product in entry[3])
                    extra = (products, bool(entry[4]))
                ops.append((code, out, tuple(int(r) for r in ins), extra))
            self._ops = ops
        obs.count("sim.packed.hydrations")
        return self

    # -- compilation --------------------------------------------------------

    def _compile(self, gate, cell_lut) -> tuple:
        lut = cell_lut(self.library, gate.cell)
        ins = tuple(self.row[net] for net in gate.inputs)
        code = _OPCODE[_classify(lut)]
        if code != _LUT:
            return (code, self.row[gate.name], ins, None)
        # Generic fallback: sum of products over whichever output
        # polarity has fewer minterms.
        ones = [v for v in range(len(lut)) if lut[v] == 1]
        zeros = [v for v in range(len(lut)) if lut[v] == 0]
        invert = len(zeros) < len(ones)
        terms = zeros if invert else ones
        products = tuple(
            tuple((ins[k], (v >> k) & 1) for k in range(len(ins)))
            for v in terms)
        return (code, self.row[gate.name], ins, (products, invert))

    # -- packed evaluation --------------------------------------------------

    def _run(self, vals: List[int], mask: int) -> None:
        """Execute the program in place on per-net packed bit strings.

        ``vals[i]`` holds the bit string of net row ``i``; entries are
        nonnegative ints with zero padding bits (every inverting op
        applies ``mask ^ x`` instead of ``~x``).
        """
        for code, out, ins, extra in self._ops:
            if code <= _XNOR:
                base = _INVERTING.get(code, code)
                acc = vals[ins[0]]
                if base == _AND:
                    for r in ins[1:]:
                        acc &= vals[r]
                elif base == _OR:
                    for r in ins[1:]:
                        acc |= vals[r]
                else:
                    for r in ins[1:]:
                        acc ^= vals[r]
                vals[out] = (mask ^ acc) if code >= _NAND else acc
            elif code == _NOT:
                vals[out] = mask ^ vals[ins[0]]
            elif code == _BUF:
                vals[out] = vals[ins[0]]
            else:
                products, invert = extra
                acc = 0
                for product in products:
                    term = mask
                    for row, positive in product:
                        v = vals[row]
                        term &= v if positive else (mask ^ v)
                    acc |= term
                vals[out] = (mask ^ acc) if invert else acc

    def _population(self, population: Population) -> np.ndarray:
        pop = np.asarray(population, dtype=np.uint8)
        if pop.ndim != 2 or pop.shape[1] != self.n_pis:
            raise ValueError(
                f"population must have shape (n_vectors, {self.n_pis}), "
                f"got {pop.shape}")
        return pop

    def _states(self, pop: np.ndarray) -> Tuple[List[int], int, int]:
        """Run a population: per-net packed ints, the mask, and n_bytes.

        The returned list has one extra trailing zero entry — the dummy
        row read by unused gate input slots of the leakage gather.
        """
        count = pop.shape[0]
        n_bytes = -(-count // 8)
        packed = np.packbits(pop.T, axis=1, bitorder="little").tobytes()
        vals: List[int] = [0] * (len(self.net_names) + 1)
        for i in range(self.n_pis):
            vals[i] = int.from_bytes(
                packed[i * n_bytes:(i + 1) * n_bytes], "little")
        mask = (1 << count) - 1
        self._run(vals, mask)
        return vals, mask, n_bytes

    def _unpack(self, vals: List[int], count: int, n_bytes: int
                ) -> np.ndarray:
        """Per-net packed ints -> (n_nets + 1, count) uint8 bit matrix."""
        buf = bytearray(len(vals) * n_bytes)
        pos = 0
        for v in vals:
            buf[pos:pos + n_bytes] = v.to_bytes(n_bytes, "little")
            pos += n_bytes
        mat = np.frombuffer(bytes(buf), dtype=np.uint8)
        mat = mat.reshape(len(vals), n_bytes)
        return np.unpackbits(mat, axis=1, count=count, bitorder="little")

    def simulate(self, pi_matrix: Dict[str, np.ndarray]
                 ) -> Dict[str, np.ndarray]:
        """Drop-in for :func:`repro.sim.logic.evaluate_batch`.

        Args:
            pi_matrix: primary input name -> 0/1 array of one length.

        Returns:
            net name -> uint8 array of values for every vector.
        """
        if not pi_matrix:
            raise ValueError("empty input matrix")
        lengths = {len(v) for v in pi_matrix.values()}
        if len(lengths) != 1:
            raise ValueError("all PI arrays must have the same length")
        columns = []
        for pi in self.circuit.primary_inputs:
            try:
                columns.append(np.asarray(pi_matrix[pi], dtype=np.uint8))
            except KeyError:
                raise KeyError(
                    f"missing array for primary input {pi!r}") from None
        pop = self._population(np.stack(columns, axis=1))
        obs.count("sim.packed.simulate_calls")
        obs.observe("sim.packed.batch_size", pop.shape[0])
        vals, _, n_bytes = self._states(pop)
        unpacked = self._unpack(vals, pop.shape[0], n_bytes)
        return {name: unpacked[i] for i, name in enumerate(self.net_names)}

    def mean_ones(self, pi_matrix: Dict[str, np.ndarray]
                  ) -> Dict[str, float]:
        """P(net = 1) per net over a batch, via packed popcounts.

        Exactly equal to ``float(values[net].mean())`` over the unpacked
        batch: the popcount and the mean's sum of 0/1 values are the
        same integer, divided by the same count.
        """
        columns = [np.asarray(pi_matrix[pi], dtype=np.uint8)
                   for pi in self.circuit.primary_inputs]
        pop = self._population(np.stack(columns, axis=1))
        count = pop.shape[0]
        obs.count("sim.packed.mean_ones_calls")
        obs.observe("sim.packed.batch_size", count)
        vals, _, _ = self._states(pop)
        return {name: vals[i].bit_count() / count
                for i, name in enumerate(self.net_names)}

    # -- the population leakage kernel --------------------------------------

    def population_leakage(self, population: Population,
                           table: LeakageTable) -> np.ndarray:
        """Total standby leakage (amperes) of every vector in one pass.

        Simulates the population bit-packed, gathers per-gate leakage
        out of per-cell LUTs by packed input-state index, and
        accumulates over gates in ``circuit.gates`` order — the exact
        summation order of the scalar path, so results match
        :func:`repro.leakage.circuit.leakage_for_vector` bit for bit.
        """
        pop = self._population(population)
        obs.count("sim.packed.leakage_calls")
        obs.observe("sim.packed.batch_size", pop.shape[0])
        with obs.span("sim.packed.population_leakage",
                      batch=int(pop.shape[0])):
            luts = _leakage_luts(table)
            gate_luts = [luts[cell] for cell in self._gate_cells]
            totals = np.empty(pop.shape[0], dtype=np.float64)
            for start in range(0, pop.shape[0], _CHUNK):
                chunk = pop[start:start + _CHUNK]
                count = chunk.shape[0]
                vals, _, n_bytes = self._states(chunk)
                unpacked = self._unpack(vals, count, n_bytes)
                index = np.zeros((len(gate_luts), count), dtype=np.uint8)
                for k in range(self._max_arity):
                    index |= unpacked[self._gate_in_rows[:, k]] << k
                part = np.zeros(count, dtype=np.float64)
                for gi, lut in enumerate(gate_luts):
                    part += lut[index[gi]]
                totals[start:start + count] = part
        return totals


def _leakage_luts(table: LeakageTable) -> Dict[str, np.ndarray]:
    """Per-cell leakage LUT arrays indexed by the packed input word.

    Memoized on the :class:`LeakageTable` instance itself (tables are
    built once and read forever), mirroring the per-``Library``
    truth-table cache in :mod:`repro.sim.logic`.
    """
    cache = table.__dict__.get("_packed_lut_cache")
    if cache is None:
        cache = {}
        for cell_name, per_vector in table.entries.items():
            lut = np.zeros(len(per_vector), dtype=np.float64)
            for vec, leak in per_vector.items():
                lut[sum(bit << k for k, bit in enumerate(vec))] = leak
            cache[cell_name] = lut
        table._packed_lut_cache = cache
    return cache
