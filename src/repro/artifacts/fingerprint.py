"""Content fingerprints: structural hashes for cache keys.

A fingerprint is a SHA-256 over a *canonical* JSON encoding of an
object's structure — every float rendered via ``float.hex()`` so the
digest is exact to the bit, every dict sorted, no object identity
anywhere.  Two objects that would produce bit-identical analysis
results hash equal; any structural change (a rewired gate, a resized
transistor, a different calibration constant) changes the digest.

Canonicalization rules per object:

* **Circuit** — primary inputs, primary outputs, and the gate list in
  *iteration order* (gate accumulation order feeds the topological
  tie-break, so it is semantically load-bearing and must be part of
  the hash).  The circuit's display ``name`` is excluded: renaming a
  circuit does not change any computed number.
* **Library** — the full technology parameter set (both polarities)
  plus every cell's series-parallel transistor trees, cells sorted by
  name (cells are looked up by name; their registration order never
  enters a computation).
* **NbtiModel** — the calibration constants and the recovery flag.

``bundle_key`` composes the three fingerprints with the leakage
temperature into the content address of an
:class:`~repro.artifacts.bundle.ArtifactBundle`; ``scenario_key``
canonicalizes an arbitrary scenario description (CLI arguments, sweep
coordinates) for the result cache.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

#: Bump when the canonical payload layout changes; part of every hash,
#: so stores written by an older scheme simply miss instead of aliasing.
SCHEMA_VERSION = 1


def _canon(obj: Any) -> Any:
    """Recursively rewrite a payload into its canonical JSON form."""
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj).hex()
    if isinstance(obj, (list, tuple)):
        return [_canon(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in sorted(obj.items())}
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for hashing")


def _hash(kind: str, payload: Any) -> str:
    """SHA-256 hex digest of ``[kind, SCHEMA_VERSION, payload]``."""
    text = json.dumps([kind, SCHEMA_VERSION, _canon(payload)],
                      separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- circuits ----------------------------------------------------------------


def circuit_fingerprint(circuit) -> str:
    """Structural hash of a netlist, independent of its display name."""
    payload = [
        list(circuit.primary_inputs),
        list(circuit.primary_outputs),
        [[g.name, g.cell, list(g.inputs)] for g in circuit.gates.values()],
    ]
    return _hash("circuit", payload)


# -- libraries ---------------------------------------------------------------


def _mosfet_payload(m) -> list:
    return [m.name, m.polarity, m.gate_pin, float(m.w), float(m.l)]


def _sp_payload(node) -> list:
    # Late import: cells.network must stay importable without artifacts.
    from repro.cells.network import Dev, Parallel, Series

    if isinstance(node, Dev):
        return ["dev", _mosfet_payload(node.mosfet)]
    if isinstance(node, Series):
        return ["series", [_sp_payload(c) for c in node.children]]
    if isinstance(node, Parallel):
        return ["par", [_sp_payload(c) for c in node.children]]
    raise TypeError(f"unknown SP node {type(node).__name__}")


def _params_payload(p) -> list:
    return [p.polarity, float(p.vth0), float(p.mobility_factor),
            float(p.subthreshold_swing_factor), float(p.dibl),
            float(p.vth_temp_coefficient), float(p.i0_density),
            float(p.gate_leak_density), float(p.gate_leak_voltage_scale)]


def _tech_payload(tech) -> list:
    return [tech.name, float(tech.vdd), float(tech.tox), float(tech.lmin),
            float(tech.wmin), float(tech.alpha),
            float(tech.reference_temperature),
            float(tech.gate_cap_per_width),
            _params_payload(tech.nmos), _params_payload(tech.pmos)]


def _cell_payload(cell) -> list:
    stages = [[s.output, _sp_payload(s.pull_up), _sp_payload(s.pull_down)]
              for s in cell.stages]
    return [cell.name, list(cell.inputs), cell.output, cell.function, stages]


def library_fingerprint(library) -> str:
    """Structural hash of a cell library, cells sorted by name."""
    payload = [
        _tech_payload(library.tech),
        [_cell_payload(library.cells[n]) for n in sorted(library.cells)],
    ]
    return _hash("library", payload)


# -- aging models ------------------------------------------------------------


def model_fingerprint(model) -> str:
    """Structural hash of an NBTI model (calibration + recovery flag)."""
    cal = model.calibration
    payload = [float(cal.kv_ref), float(cal.vth_ref), float(cal.e0_volts),
               float(cal.t_ref), float(cal.ed), float(cal.vdd),
               bool(model.scale_recovery)]
    return _hash("nbti_model", payload)


# -- composed keys -----------------------------------------------------------


def bundle_key(circuit_fp: str, library_fp: str, model_fp: str,
               leakage_temperature: float) -> str:
    """Content address of a compiled-artifact bundle."""
    return _hash("bundle", [circuit_fp, library_fp, model_fp,
                            float(leakage_temperature)])


def scenario_key(scenario: Dict[str, Any]) -> str:
    """Canonical hash of a scenario description for the result cache."""
    return _hash("scenario", scenario)
