"""Tests for the circuit DAG model."""

import pytest

from repro.cells import build_library
from repro.netlist import Circuit, CircuitError, Gate


def c17():
    """The classic ISCAS c17: 5 inputs, 2 outputs, 6 NAND2 gates."""
    return Circuit(
        "c17",
        primary_inputs=["1", "2", "3", "6", "7"],
        primary_outputs=["22", "23"],
        gates=[
            Gate("10", "NAND2", ["1", "3"]),
            Gate("11", "NAND2", ["3", "6"]),
            Gate("16", "NAND2", ["2", "11"]),
            Gate("19", "NAND2", ["11", "7"]),
            Gate("22", "NAND2", ["10", "16"]),
            Gate("23", "NAND2", ["16", "19"]),
        ],
    )


class TestConstruction:
    def test_c17_builds(self):
        c = c17()
        assert c.n_gates() == 6
        assert c.stats() == {"inputs": 5, "outputs": 2, "gates": 6, "depth": 3}

    def test_duplicate_gate_rejected(self):
        with pytest.raises(CircuitError, match="duplicate"):
            Circuit("x", ["a"], ["g"], [Gate("g", "INV", ["a"]),
                                        Gate("g", "INV", ["a"])])

    def test_gate_shadowing_pi_rejected(self):
        with pytest.raises(CircuitError, match="collides"):
            Circuit("x", ["a"], ["a"], [Gate("a", "INV", ["a"])])

    def test_undriven_input_rejected(self):
        with pytest.raises(CircuitError, match="undriven"):
            Circuit("x", ["a"], ["g"], [Gate("g", "NAND2", ["a", "phantom"])])

    def test_undriven_output_rejected(self):
        with pytest.raises(CircuitError, match="undriven"):
            Circuit("x", ["a"], ["nothere"], [Gate("g", "INV", ["a"])])

    def test_duplicate_pi_rejected(self):
        with pytest.raises(CircuitError, match="duplicate"):
            Circuit("x", ["a", "a"], ["g"], [Gate("g", "INV", ["a"])])

    def test_gate_needs_inputs(self):
        with pytest.raises(ValueError):
            Gate("g", "INV", [])


class TestTopology:
    def test_topological_order_respects_dependencies(self):
        c = c17()
        order = c.topological_order()
        pos = {name: i for i, name in enumerate(order)}
        for gate in c.gates.values():
            for net in gate.inputs:
                if net in c.gates:
                    assert pos[net] < pos[gate.name]

    def test_cycle_detected(self):
        c = Circuit("loop", ["a"], ["g1"], [
            Gate("g1", "NAND2", ["a", "g2"]),
            Gate("g2", "INV", ["g1"]),
        ])
        with pytest.raises(CircuitError, match="cycle"):
            c.topological_order()

    def test_levels(self):
        lv = c17().levels()
        assert lv["1"] == 0
        assert lv["10"] == 1
        assert lv["16"] == 2
        assert lv["22"] == 3

    def test_fanout(self):
        fo = c17().fanout()
        assert sorted(fo["11"]) == ["16", "19"]
        assert fo["22"] == []

    def test_transitive_fanin(self):
        c = c17()
        cone = c.transitive_fanin(["22"])
        assert cone == {"22", "10", "16", "1", "3", "2", "11", "6"}

    def test_nets(self):
        assert c17().nets == {"1", "2", "3", "6", "7", "10", "11", "16", "19", "22", "23"}


class TestDerivedCaches:
    def test_topological_order_cached_but_copied(self):
        c = c17()
        first = c.topological_order()
        second = c.topological_order()
        assert first == second
        assert first is not second  # callers get private copies
        first.clear()
        assert c.topological_order()  # cache unharmed

    def test_fanout_and_levels_cached(self):
        c = c17()
        assert c._fanout_cache is None and c._levels_cache is None
        fo = c.fanout()
        lv = c.levels()
        assert c._fanout_cache is not None and c._levels_cache is not None
        fo["fake"] = []  # outer dict is a copy
        lv["fake"] = 9
        assert "fake" not in c.fanout()
        assert "fake" not in c.levels()

    def test_nets_cached_as_frozenset(self):
        c = c17()
        nets = c.nets
        assert isinstance(nets, frozenset)
        assert c.nets is nets

    def test_invalidate_caches_drops_everything(self):
        c = c17()
        c.topological_order(), c.fanout(), c.levels(), c.nets
        c.invalidate_caches()
        assert c._topo_cache is None
        assert c._fanout_cache is None
        assert c._levels_cache is None
        assert c._nets_cache is None


class TestReplaceGate:
    def test_replace_updates_structure(self):
        c = c17()
        old_fanout = c.fanout()
        c.replace_gate(Gate("16", "NOR2", ["2", "10"]))
        assert c.gates["16"].cell == "NOR2"
        new_fanout = c.fanout()
        assert "16" in new_fanout["10"]
        assert "16" not in new_fanout["11"]
        assert old_fanout != new_fanout

    def test_replace_unknown_gate_rejected(self):
        with pytest.raises(CircuitError, match="no gate"):
            c17().replace_gate(Gate("99", "INV", ["1"]))

    def test_replace_creating_cycle_rolls_back(self):
        c = c17()
        with pytest.raises(CircuitError, match="cycle"):
            c.replace_gate(Gate("10", "NAND2", ["1", "22"]))
        assert c.gates["10"].inputs == ("1", "3")
        c.topological_order()  # circuit still sound

    def test_replace_undriven_net_rolls_back(self):
        c = c17()
        with pytest.raises(CircuitError, match="undriven"):
            c.replace_gate(Gate("10", "NAND2", ["1", "ghost"]))
        assert c.gates["10"].inputs == ("1", "3")


class TestValidation:
    def test_c17_validates_against_library(self):
        c17().validate(build_library())

    def test_unknown_cell(self):
        c = Circuit("x", ["a", "b"], ["g"], [Gate("g", "MAJ3", ["a", "b", "a"])])
        with pytest.raises(CircuitError, match="unknown cell"):
            c.validate(build_library())

    def test_arity_mismatch(self):
        c = Circuit("x", ["a", "b"], ["g"], [Gate("g", "NAND3", ["a", "b"])])
        with pytest.raises(CircuitError, match="expects"):
            c.validate(build_library())

    def test_cell_histogram(self):
        assert c17().cell_histogram() == {"NAND2": 6}
