"""Ablation — eq. (22) per-gate aging vs physically-finer per-edge aging.

The paper applies eq. (22) to each gate's delay as a whole.  Physically,
NBTI slows only the pull-up (rising) edge of a single-stage cell.  This
ablation runs the Table 4 worst case both ways: the per-edge model
roughly halves the circuit-level degradation (only ~half the arcs on a
path are PMOS-driven), bounding the modeling-choice sensitivity of the
published numbers.
"""

from _common import emit
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.netlist import iscas85
from repro.sta import ALL_ZERO, AgingAnalyzer, analyze, gate_loads

CIRCUITS = ("c432", "c880", "c1355")


def run_ablation():
    analyzer = AgingAnalyzer()
    rows = []
    for name in CIRCUITS:
        circuit = iscas85.load(name)
        profile = OperatingProfile.from_ras("1:9", t_standby=400.0)
        loads = gate_loads(circuit)
        shifts = analyzer.gate_shifts(circuit, profile, TEN_YEARS,
                                      standby=ALL_ZERO)
        fresh = analyze(circuit, loads=loads).circuit_delay
        per_gate = analyze(circuit, delta_vth=shifts, loads=loads,
                           aging_mode="per_gate").circuit_delay
        per_edge = analyze(circuit, delta_vth=shifts, loads=loads,
                           aging_mode="per_edge").circuit_delay
        rows.append({
            "name": name,
            "per_gate": per_gate / fresh - 1.0,
            "per_edge": per_edge / fresh - 1.0,
        })
    return rows


def check(rows):
    for r in rows:
        assert 0 < r["per_edge"] <= r["per_gate"] + 1e-12
        ratio = r["per_edge"] / r["per_gate"]
        assert 0.2 < ratio <= 1.0, r
    # The halving shows on single-stage-cell circuits: c1355 is all
    # NAND/NOR (no internal stages to age on the falling edge).
    c1355 = next(r for r in rows if r["name"] == "c1355")
    assert c1355["per_edge"] / c1355["per_gate"] < 0.85


def report(rows):
    printable = [
        [r["name"], f"{r['per_gate'] * 100:5.2f}",
         f"{r['per_edge'] * 100:5.2f}",
         f"{r['per_edge'] / r['per_gate']:.2f}"]
        for r in rows
    ]
    emit("Ablation — worst-case 10-year degradation (%) by aging model "
         "(RAS 1:9, T_standby 400 K)",
         ["circuit", "per-gate (paper eq. 22)", "per-edge (physical)",
          "ratio"],
         printable)
    print("The paper's per-gate application of eq. (22) is the "
          "conservative choice.\nOn single-stage-cell netlists (c1355: "
          "all NAND) rise-only aging roughly halves\nthe number; on "
          "AND/OR-mapped netlists the internal inverting stages age "
          "both\noutput edges anyway, so the two models nearly agree.")


def test_ablation_aging_mode(run_once):
    rows = run_once(run_ablation)
    check(rows)
    report(rows)


if __name__ == "__main__":
    r = run_ablation()
    check(r)
    report(r)
