"""Lumped-RC thermal substrate (S6): power traces to temperatures."""

from repro.thermal.rc import ThermalRC, simulate_trace
from repro.thermal.feedback import FeedbackResult, solve_standby_temperature
from repro.thermal.profile import (
    Task,
    mode_temperatures,
    profile_from_powers,
    random_task_set,
    task_set_trace,
    trace_statistics,
)

__all__ = [
    "ThermalRC", "simulate_trace",
    "FeedbackResult", "solve_standby_temperature",
    "Task", "mode_temperatures", "profile_from_powers",
    "random_task_set", "task_set_trace", "trace_statistics",
]
