"""Per-cell leakage evaluation and lookup tables.

Reproduces the paper's leakage characterization: "a leakage lookup table
is created by simulating all the gates in the standard cell library under
all possible input patterns" (Sec. 4.3.1).  Here the "simulation" is the
analytical stacking-effect solver of :mod:`repro.cells.network` plus the
gate-tunneling model, evaluated per stage at the requested temperature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.cells.cell import Cell
from repro.cells.library import Library
from repro.cells.network import Bit, conducts, devices, network_leakage
from repro.tech.mosfet import gate_leakage_current
from repro.tech.ptm import Technology

#: Fraction of Vdd used as the effective oxide voltage of an OFF device
#: (edge direct tunneling); the ON state sees the full Vdd.
_OFF_STATE_VOX_FRACTION = 0.3


def cell_leakage(cell: Cell, bits: Sequence[Bit], tech: Technology,
                 temperature: float, *, include_gate_leakage: bool = True,
                 delta_vth: float = 0.0) -> float:
    """Total standby leakage of ``cell`` under input vector ``bits``.

    Subthreshold leakage flows through each stage's blocking network
    (with intermediate stack nodes solved numerically); gate tunneling is
    summed over all devices with a carrier-type-asymmetric density, which
    is what makes NMOS-on states expensive and reproduces the Table 2
    orderings.

    Returns amperes.
    """
    values = cell.node_values(bits)
    total = 0.0
    for stage in cell.stages:
        out_high = values[stage.output] == 1
        blocking = stage.pull_down if out_high else stage.pull_up
        total += network_leakage(blocking, values, tech, temperature,
                                 delta_vth=delta_vth)
        if include_gate_leakage:
            for net in (stage.pull_up, stage.pull_down):
                for m in devices(net):
                    on = (values[m.gate_pin] == 1) == (m.polarity == "nmos")
                    vox = tech.vdd if on else _OFF_STATE_VOX_FRACTION * tech.vdd
                    total += gate_leakage_current(
                        tech.params(m.polarity), w=m.w, l=m.l, vox=vox
                    )
    return total


@dataclass
class LeakageTable:
    """Leakage of every (cell, input vector) pair at one temperature.

    This is the direct analogue of the paper's lookup table feeding
    eq. (24); build once, then query in O(1) during MLV search.
    """

    tech: Technology
    temperature: float
    entries: Dict[str, Dict[Tuple[Bit, ...], float]]

    @classmethod
    def build(cls, library: Library, temperature: float,
              include_gate_leakage: bool = True) -> "LeakageTable":
        entries: Dict[str, Dict[Tuple[Bit, ...], float]] = {}
        for cell in library:
            per_vector = {}
            for vec in cell.all_vectors():
                per_vector[vec] = cell_leakage(
                    cell, vec, library.tech, temperature,
                    include_gate_leakage=include_gate_leakage,
                )
            entries[cell.name] = per_vector
        return cls(tech=library.tech, temperature=temperature, entries=entries)

    def lookup(self, cell_name: str, bits: Sequence[Bit]) -> float:
        """Leakage in amperes of ``cell_name`` under ``bits``."""
        try:
            per_vector = self.entries[cell_name]
        except KeyError:
            raise KeyError(f"cell {cell_name!r} not in leakage table") from None
        return per_vector[tuple(bits)]

    def min_vector(self, cell_name: str) -> Tuple[Tuple[Bit, ...], float]:
        """The minimum-leakage input vector of a cell and its leakage."""
        per_vector = self.entries[cell_name]
        vec = min(per_vector, key=per_vector.get)
        return vec, per_vector[vec]

    def max_vector(self, cell_name: str) -> Tuple[Tuple[Bit, ...], float]:
        """The maximum-leakage input vector of a cell and its leakage."""
        per_vector = self.entries[cell_name]
        vec = max(per_vector, key=per_vector.get)
        return vec, per_vector[vec]

    def expected_leakage(self, cell_name: str,
                         pin_one_prob: Sequence[float]) -> float:
        """Probability-weighted leakage, eq. (24): Σ I(v)·Prob(v).

        ``pin_one_prob`` gives P(pin = 1) per input pin, pins assumed
        independent.
        """
        per_vector = self.entries[cell_name]
        total = 0.0
        for vec, current in per_vector.items():
            if len(vec) != len(pin_one_prob):
                raise ValueError("probability vector length mismatch")
            p = 1.0
            for bit, p1 in zip(vec, pin_one_prob):
                p *= p1 if bit == 1 else (1.0 - p1)
            total += p * current
        return total
