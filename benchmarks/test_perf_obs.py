"""Perf harness — the disabled observability path must be near-free.

The instrumentation layer's contract (docs/OBSERVABILITY.md): with no
tracer installed, every ``obs.span`` / ``obs.count`` / ``obs.observe``
call is one global read plus an identity check.  This harness pins that
contract against the repo's headline aging benchmark:

* **Headline run** — ``statistical_aging`` with the compiled engine
  (the ``test_perf_aging.py`` acceptance case), tracing disabled,
  timed as ``T_off``.
* **Event census** — the same workload under a real tracer/registry,
  counting every instrumentation event it emits (spans opened, counter
  increments, histogram observations).
* **Disabled microbench** — the per-call cost ``c`` of the no-op
  span/count/observe fast path, measured over a large loop.

The assertion is the product: ``events x c <= 2% of T_off`` — i.e. even
if every event the enabled run emits were re-priced at the disabled
per-call cost, the total would stay under the 2 % budget.  This bounds
the disabled overhead structurally instead of diffing two noisy wall
times.  A second assertion checks the enabled run returns bit-identical
delays, so turning tracing on never changes results.

Set ``BENCH_SMOKE=1`` for the seconds-scale CI configuration.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from _common import emit, record_history
from repro import AnalysisContext, obs
from repro.constants import TEN_YEARS, years
from repro.core import OperatingProfile
from repro.netlist import iscas85
from repro.variation import VariationModel, statistical_aging

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
CIRCUIT = "c432" if SMOKE else "c7552"
N_SAMPLES = 32 if SMOKE else 200
PROFILE = OperatingProfile.from_ras("1:9", t_standby=330.0)
TIMES = ((0.0, years(3.0), TEN_YEARS) if SMOKE else
         (0.0,) + tuple(np.logspace(np.log10(years(0.25)),
                                    np.log10(TEN_YEARS), 10)))
#: Disabled-path calls in the microbenchmark loop.
N_CALLS = 200_000
#: The contract: projected disabled overhead <= 2 % of the headline run.
MAX_OVERHEAD_FRACTION = 0.02
ARTIFACT = Path(__file__).with_name("BENCH_obs.json")


def _headline(context):
    """One compiled-engine statistical-aging run (the headline case)."""
    return statistical_aging(context.circuit, PROFILE, times=TIMES,
                             n_samples=N_SAMPLES,
                             variation=VariationModel(sigma_local=0.015),
                             seed=12, context=context, engine="compiled")


def _primed_context():
    circuit = iscas85.load(CIRCUIT)
    context = AnalysisContext(circuit)
    context.compiled_timing().base_delays()
    return context


def run_perf_disabled_overhead():
    """Headline run off/on, event census, and the no-op per-call cost."""
    assert not obs.tracing_enabled(), "benchmark needs a clean obs state"

    # Headline workload with tracing disabled (the production default).
    ctx_off = _primed_context()
    start = time.perf_counter()
    result_off = _headline(ctx_off)
    t_off = time.perf_counter() - start

    # Same workload under collection: census of emitted events, and the
    # bit-identical guarantee.
    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    ctx_on = _primed_context()
    with obs.use_tracer(tracer), obs.use_metrics(registry):
        start = time.perf_counter()
        result_on = _headline(ctx_on)
        t_on = time.perf_counter() - start
    n_spans = sum(1 for _ in tracer.iter_spans())
    n_counts = n_observes = 0
    for snap in registry.snapshot().values():
        if snap["type"] == "counter":
            n_counts += int(sum(snap["values"].values()))
        else:
            n_observes += int(snap["count"])
    n_events = n_spans + n_counts + n_observes

    # Per-call cost of the disabled fast path (span + annotate + count
    # + observe per loop iteration, i.e. 4 no-op calls).
    start = time.perf_counter()
    for i in range(N_CALLS):
        with obs.span("bench.noop", i=i):
            obs.annotate(j=i)
        obs.count("bench.noop")
        obs.observe("bench.noop", i)
    per_call = (time.perf_counter() - start) / (4 * N_CALLS)

    projected = n_events * per_call
    return {
        "circuit": CIRCUIT,
        "n_samples": N_SAMPLES,
        "n_times": len(TIMES),
        "disabled_seconds": t_off,
        "enabled_seconds": t_on,
        "events_enabled_run": n_events,
        "spans": n_spans,
        "counter_increments": n_counts,
        "histogram_observations": n_observes,
        "noop_call_seconds": per_call,
        "projected_disabled_overhead_seconds": projected,
        "projected_overhead_fraction": projected / t_off,
        "identical": bool(
            np.array_equal(result_off.delays, result_on.delays)
            and np.array_equal(result_off.times, result_on.times)),
    }


def run_perf_obs():
    return {"smoke": SMOKE, "overhead": run_perf_disabled_overhead()}


def check(row):
    ov = row["overhead"]
    assert ov["identical"], \
        "enabling tracing changed the statistical-aging results"
    frac = ov["projected_overhead_fraction"]
    assert frac <= MAX_OVERHEAD_FRACTION, (
        f"disabled instrumentation projects to {frac:.2%} of the "
        f"headline run (bar: {MAX_OVERHEAD_FRACTION:.0%}): "
        f"{ov['events_enabled_run']} events x "
        f"{ov['noop_call_seconds']:.2e} s/call vs "
        f"{ov['disabled_seconds']:.3f} s")


def report(row):
    ov = row["overhead"]
    emit(f"Disabled-path overhead — {ov['circuit']}, "
         f"{ov['n_samples']} dies, {ov['n_times']} lifetime points",
         ["quantity", "value"],
         [["headline run, tracing off (s)", f"{ov['disabled_seconds']:.3f}"],
          ["headline run, tracing on (s)", f"{ov['enabled_seconds']:.3f}"],
          ["events in enabled run", f"{ov['events_enabled_run']:,}"],
          ["no-op call cost (ns)", f"{ov['noop_call_seconds'] * 1e9:.0f}"],
          ["projected disabled overhead",
           f"{ov['projected_overhead_fraction']:.3%}"]])
    print(f"projected overhead {ov['projected_overhead_fraction']:.3%} "
          f"(bar: {MAX_OVERHEAD_FRACTION:.0%}), bit-identical: "
          f"{ov['identical']}")
    ARTIFACT.write_text(json.dumps(row, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    record_history(
        "perf_obs", wall_seconds=ov["disabled_seconds"],
        smoke=row["smoke"],
        extra={"overhead_fraction": ov["projected_overhead_fraction"]})


def test_perf_obs(run_once):
    row = run_once(run_perf_obs)
    check(row)
    report(row)


if __name__ == "__main__":
    r = run_perf_obs()
    check(r)
    report(r)
