"""Process-parallel sweep runner (repro.flow.parallel).

The sweep runner's contract: results in job order, serial and pooled
execution produce identical values, pool-infrastructure failures
degrade to the serial loop, and worker *logic* errors propagate.
"""

import concurrent.futures
import os

import pytest

from repro import obs
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.flow.parallel import (
    CoOptimizationJob,
    co_optimize_circuit,
    load_circuit,
    run_co_optimization_sweep,
    run_potential_sweep,
    run_sweep,
)

PROFILE = OperatingProfile.from_ras("1:5", t_standby=330.0)


# Workers must live at module level so the process pool can pickle them.
def _square(x):
    return x * x


def _maybe_fail(x):
    if x == 3:
        raise KeyError("job 3 is poisoned")
    return -x


class TestRunSweep:
    def test_empty_jobs(self):
        assert run_sweep(_square, []) == []
        assert run_sweep(_square, [], max_workers=4) == []

    def test_serial_preserves_order(self):
        assert run_sweep(_square, range(6), max_workers=1) == \
            [0, 1, 4, 9, 16, 25]

    def test_pool_preserves_order(self):
        assert run_sweep(_square, range(6), max_workers=2) == \
            [0, 1, 4, 9, 16, 25]

    def test_worker_error_propagates_serially(self):
        with pytest.raises(KeyError, match="poisoned"):
            run_sweep(_maybe_fail, [1, 2, 3], max_workers=1)

    def test_worker_error_propagates_from_pool(self):
        with pytest.raises(KeyError, match="poisoned"):
            run_sweep(_maybe_fail, [1, 2, 3], max_workers=2)

    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        class NoPool:
            def __init__(self, *a, **k):
                raise OSError("no process support here")

        monkeypatch.setattr("repro.flow.parallel.ProcessPoolExecutor",
                            NoPool)
        assert run_sweep(_square, range(4), max_workers=2) == [0, 1, 4, 9]

    def test_unpicklable_job_falls_back_to_serial(self):
        # A lambda job can't cross the process boundary; the runner
        # degrades to the serial loop instead of crashing.
        jobs = [lambda: 7]
        assert run_sweep(lambda f: f(), jobs, max_workers=2) == [7]


class TestLoadCircuit:
    def test_iscas85_name(self):
        assert load_circuit("c432").name == "c432"

    def test_packaged_name(self):
        assert load_circuit("c17").name == "c17"

    def test_bench_path(self, tmp_path):
        from repro.netlist import load_packaged, save_bench

        path = tmp_path / "tiny.bench"
        save_bench(load_packaged("c17"), path)
        assert sorted(load_circuit(str(path)).primary_inputs) == \
            sorted(load_packaged("c17").primary_inputs)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown circuit"):
            load_circuit("c99999")


class TestCoOptimizationSweep:
    def test_pooled_identical_to_serial(self):
        kwargs = dict(n_vectors=16, max_set_size=4, seed=3)
        serial = run_co_optimization_sweep(("c17", "c432"), PROFILE,
                                           TEN_YEARS, max_workers=1,
                                           **kwargs)
        pooled = run_co_optimization_sweep(("c17", "c432"), PROFILE,
                                           TEN_YEARS, max_workers=2,
                                           **kwargs)
        assert serial == pooled
        assert [row.name for row in serial] == ["c17", "c432"]

    def test_row_matches_direct_worker(self):
        job = CoOptimizationJob(circuit="c17", profile=PROFILE,
                                lifetime=TEN_YEARS, n_vectors=16,
                                max_set_size=4, seed=3)
        row = co_optimize_circuit(job)
        [sweep_row] = run_co_optimization_sweep(
            ("c17",), PROFILE, TEN_YEARS, n_vectors=16, max_set_size=4,
            seed=3, max_workers=1)
        assert row == sweep_row
        assert 0.0 <= row.min_degradation <= row.worst_degradation + 1e-12
        assert row.chosen_leakage <= row.expected_leakage
        assert len(row.chosen_bits) == len(load_circuit("c17").primary_inputs)


class TestPotentialSweep:
    def test_pooled_identical_to_serial(self):
        serial = run_potential_sweep(("c17",), (330.0, 400.0),
                                     max_workers=1)
        pooled = run_potential_sweep(("c17",), (330.0, 400.0),
                                     max_workers=2)
        assert list(serial) == ["c17"]
        assert serial == pooled
        sweep = serial["c17"]
        assert len(sweep) == 2
        assert sweep[0].t_standby == 330.0
        assert sweep[1].worst_degradation >= sweep[0].worst_degradation


# -- observability: pooled and serial sweeps must merge identically ----------


# Instrumented workers, module-level so the pool can pickle them.
def _traced_negate(x):
    with obs.span("worker.compute", job=x):
        obs.count("worker.calls")
        obs.observe("worker.input", x)
    return -x


def _context_probe(name):
    from repro.context import AnalysisContext

    ctx = AnalysisContext(load_circuit(name))
    ctx.probabilities()
    ctx.probabilities()
    return ctx.fresh_delay()


def _traced_gauge(x):
    obs.gauge("worker.last_job", x)
    obs.count("worker.calls")
    return x


class TestObservedSweep:
    """With collection active, a pooled sweep and a serial sweep produce
    the same span structure, metric totals, and merged cache stats —
    payloads fold back in job order, not completion order."""

    def _run(self, worker, jobs, max_workers):
        tracer = obs.Tracer()
        registry = obs.MetricsRegistry()
        captured = []
        with obs.use_tracer(tracer), obs.use_metrics(registry), \
                obs.cache_scope(captured):
            results = run_sweep(worker, jobs, max_workers=max_workers)
        return results, tracer, registry.snapshot(), captured

    @staticmethod
    def _shape(span):
        # Structure + attributes, ignoring wall-clock fields and the
        # worker pid (pooled adoption tags cross-process spans for the
        # timeline's pid lanes; serial runs stay in-process).
        attrs = {k: v for k, v in span.attributes.items() if k != "pid"}
        return (span.name, attrs,
                [TestObservedSweep._shape(c) for c in span.children])

    def test_results_unwrapped_when_observed(self):
        results, tracer, metrics, _ = self._run(_traced_negate, [1, 2, 3], 1)
        assert results == [-1, -2, -3]
        assert tracer.roots[0].name == "flow.run_sweep"
        assert metrics["worker.calls"]["values"][""] == 3

    def test_pooled_matches_serial(self):
        jobs = [1, 2, 3, 4]
        s_res, s_tr, s_metrics, _ = self._run(_traced_negate, jobs, 1)
        p_res, p_tr, p_metrics, _ = self._run(_traced_negate, jobs, 2)
        assert s_res == p_res == [-1, -2, -3, -4]
        assert s_metrics == p_metrics
        assert s_metrics["worker.input"]["count"] == 4
        [s_root] = s_tr.roots
        [p_root] = p_tr.roots
        assert s_root.attributes["pooled"] is False
        assert p_root.attributes["pooled"] is True
        # Adopted worker spans: same names, attributes (including the
        # worker index), and nesting on both paths.
        assert [self._shape(c) for c in s_root.children] == \
            [self._shape(c) for c in p_root.children]
        assert [c.attributes["worker"] for c in p_root.children] == \
            [0, 1, 2, 3]

    def test_cache_stats_merge_identically(self):
        jobs = ["c17", "c17"]
        _, _, _, s_cache = self._run(_context_probe, jobs, 1)
        _, _, _, p_cache = self._run(_context_probe, jobs, 2)
        assert s_cache == p_cache
        [entry] = s_cache  # two same-circuit workers merge to one scope
        assert entry["scope"] == "c17"
        assert entry["artifacts"]["probabilities"] == \
            {"hits": 2, "misses": 2}

    def test_workers_not_wrapped_when_disabled(self):
        assert not obs.tracing_enabled()
        assert run_sweep(_traced_negate, [5], max_workers=1) == [-5]
        assert run_sweep(_traced_negate, [5], max_workers=2) == [-5]

    def test_pooled_spans_carry_worker_pids(self):
        # Cross-process adoption tags each worker's spans with its OS
        # pid (the timeline's lane key); a serial run stays untagged.
        _, p_tr, _, _ = self._run(_traced_negate, [1, 2], 2)
        [root] = p_tr.roots
        pids = {c.attributes.get("pid") for c in root.children}
        assert None not in pids
        assert all(pid != os.getpid() for pid in pids)
        _, s_tr, _, _ = self._run(_traced_negate, [1, 2], 1)
        [s_root] = s_tr.roots
        assert all("pid" not in c.attributes for c in s_root.children)

    def test_gauge_merges_last_write_in_job_order(self):
        # Gauge merge is last-write-wins folded in job order, so the
        # surviving value is the last job's — serial and pooled alike.
        for workers in (1, 2):
            _, _, metrics, _ = self._run(_traced_gauge, [1, 2, 3, 4],
                                         workers)
            assert metrics["worker.last_job"]["values"][""] == 4
            assert metrics["worker.calls"]["values"][""] == 4

    def test_repeated_pooled_runs_canonically_identical(self):
        # Byte-identical canonical RunReports across repeated pooled
        # runs: adoption order is job order, never completion order.
        docs = []
        for _ in range(2):
            _, tr, metrics, cache = self._run(_traced_negate,
                                              [1, 2, 3, 4], 2)
            report = obs.RunReport("sweep", spans=tr.span_dicts(),
                                   metrics=metrics, cache_stats=cache)
            docs.append(obs.canonical_json(report.to_dict()))
        assert docs[0] == docs[1]


def test_pool_actually_used_when_forced():
    # Sanity: max_workers=2 really routes through ProcessPoolExecutor
    # (guards against a refactor silently making everything serial).
    calls = []
    real = concurrent.futures.ProcessPoolExecutor

    class Spy(real):
        def __init__(self, *a, **k):
            calls.append(k.get("max_workers"))
            super().__init__(*a, **k)

    import repro.flow.parallel as mod
    old = mod.ProcessPoolExecutor
    mod.ProcessPoolExecutor = Spy
    try:
        run_sweep(_square, range(3), max_workers=2)
    finally:
        mod.ProcessPoolExecutor = old
    assert calls == [2]
