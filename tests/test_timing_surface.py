"""Array-native timing surface: accessor identity and cache accounting.

The :class:`~repro.sta.compiled.TimingSurface` contract is that every
accessor equals the matching :class:`~repro.sta.analysis.TimingResult`
field **bit-for-bit** — same floats, same tie-breaks, same list orders —
while never opening the ``sta.compiled.assemble`` span.  These tests pin
that contract across the full ISCAS85 set plus the generator circuits,
pin the vectorized ``base_delays`` compile against its retained scalar
oracle, pin the array-native variation sampling against the per-die dict
path, and assert (by span accounting, not wall clock) that the converted
greedy flows never assemble a ``TimingResult`` in their trial loops.
"""

import numpy as np
import pytest

from tests._engines import assert_engines_match, assert_identical
from repro import AnalysisContext, obs
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.flow.dual_vth import assign_dual_vth
from repro.flow.sizing import size_for_aging
from repro.ivc.control_points import greedy_control_points
from repro.netlist import iscas85, random_logic
from repro.netlist.generators import (array_multiplier, ecc_circuit,
                                      priority_controller)
from repro.sta.analysis import _EDGES, analyze
from repro.sta.compiled import CompiledTiming
from repro.variation.sampling import VariationModel
from repro.variation.statistical import statistical_aging

PROFILE = OperatingProfile.from_ras("1:9", t_standby=330.0)

ISCAS85 = ["c432", "c499", "c880", "c1355", "c1908", "c2670",
           "c3540", "c5315", "c6288", "c7552"]

GENERATORS = {
    "rnd1": lambda: random_logic("rnd1", n_inputs=10, n_outputs=4,
                                 n_gates=60, seed=3),
    "rnd2": lambda: random_logic("rnd2", n_inputs=16, n_outputs=8,
                                 n_gates=200, seed=11),
    "mult6": lambda: array_multiplier(bits=6),
    "prio12": lambda: priority_controller(channels=12),
    "ecc16": lambda: ecc_circuit(data_bits=16, check_bits=6),
}

_CACHE = {}


def circuit_named(name):
    if name not in _CACHE:
        _CACHE[name] = (GENERATORS[name]() if name in GENERATORS
                        else iscas85.load(name))
    return _CACHE[name]


def random_dvth(circuit, seed=0, scale=0.05):
    rng = np.random.default_rng(seed)
    return {g: float(dv) for g, dv in
            zip(circuit.gates, rng.uniform(0.0, scale, len(circuit.gates)))}


def assert_surface_matches(circuit, surface, result):
    """Every surface accessor against the assembled TimingResult."""
    ct = surface.compiled
    assert surface.circuit_delay == result.circuit_delay
    assert surface.critical_output == result.critical_output
    assert surface.critical_edge == result.critical_edge
    assert surface.required_time == result.required_time
    assert surface.critical_gates() == result.critical_gates()
    # Arrivals: the (n_gates, 2) block and point reads.
    arrivals = surface.gate_arrivals()
    for i, gate in enumerate(ct.gate_names):
        for e, edge in enumerate(_EDGES):
            assert arrivals[i, e] == result.arrival[gate][edge]
    for net in result.arrival:
        for edge in _EDGES:
            assert surface.arrival(net, edge) == result.arrival[net][edge]
    # Slacks: the per-gate vector and every per-net point read.
    gate_slacks = surface.gate_slacks()
    for i, gate in enumerate(ct.gate_names):
        assert gate_slacks[i] == result.slack[gate]
    for net in result.slack:
        assert surface.slack_of(net) == result.slack[net]
    # Derived near-critical sets at several thresholds.
    finite = sorted(s for s in result.slack.values() if np.isfinite(s))
    for threshold in (0.0, finite[len(finite) // 2], finite[-1]):
        assert (surface.gates_with_slack_below(threshold)
                == result.gates_with_slack_below(threshold))


class TestSurfaceIdentity:
    @pytest.mark.parametrize("name", ISCAS85 + sorted(GENERATORS))
    def test_accessors_match_timing_result(self, name):
        circuit = circuit_named(name)
        compiled = CompiledTiming(circuit)
        for dvth in (None, random_dvth(circuit, seed=hash(name) % 1000)):
            result = assert_engines_match(
                lambda engine: analyze(circuit, delta_vth=dvth,
                                       engine=engine),
                fields=("circuit_delay", "arrival", "slack",
                        "critical_output", "critical_edge",
                        "required_time"))
            assert_surface_matches(circuit, compiled.surface(dvth), result)

    def test_supply_drop_and_temperature_scenarios(self):
        circuit = circuit_named("c880")
        compiled = CompiledTiming(circuit)
        dvth = random_dvth(circuit, seed=8)
        for drop, temp in ((0.05, 300.0), (0.0, 400.0), (0.03, 380.0)):
            result = analyze(circuit, delta_vth=dvth, supply_drop=drop,
                             temperature=temp, engine="scalar")
            surface = compiled.surface(dvth, supply_drop=drop,
                                       temperature=temp)
            assert_surface_matches(circuit, surface, result)

    def test_fixed_required_time(self):
        circuit = circuit_named("c432")
        compiled = CompiledTiming(circuit)
        target = compiled.surface().circuit_delay * 1.1
        result = analyze(circuit, required_time=target, engine="scalar")
        surface = compiled.surface(required_time=target)
        assert_surface_matches(circuit, surface, result)

    def test_surface_rejects_batched_delays(self):
        circuit = circuit_named("c432")
        compiled = CompiledTiming(circuit)
        batched = np.zeros((2 * compiled.n_gates, 3))
        with pytest.raises(ValueError, match="one scenario"):
            compiled.surface(delays=batched)


class TestVectorizedBaseDelays:
    @pytest.mark.parametrize("name", ["c432", "c1908", "c6288", "mult6"])
    def test_matches_scalar_oracle(self, name):
        circuit = circuit_named(name)
        compiled = CompiledTiming(circuit)
        for drop, temp in ((0.0, 300.0), (0.05, 300.0), (0.0, 400.0),
                           (0.03, 380.0)):
            fast = compiled.base_delays(drop, temp)
            oracle = compiled._base_delays_oracle(drop, temp)
            assert fast.shape == oracle.shape
            assert np.array_equal(fast, oracle)
            assert not fast.flags.writeable

    def test_memo_export_roundtrip(self):
        circuit = circuit_named("c432")
        compiled = CompiledTiming(circuit)
        compiled.base_delays()
        compiled.base_delays(0.05, 330.0)
        state = compiled.export_state()
        assert len(state["base_delay_keys"]) == 2
        assert np.asarray(state["base_delay_matrix"]).shape[0] == 2
        hydrated = CompiledTiming.from_state(circuit, compiled.library,
                                             state)
        for key in ((0.0, 300.0), (0.05, 330.0)):
            assert np.array_equal(hydrated.base_delays(*key),
                                  compiled.base_delays(*key))


class TestSampleMatrix:
    @pytest.mark.parametrize("model", [
        VariationModel(),
        VariationModel(sigma_global=0.005),
        VariationModel(sigma_local=0.0, sigma_global=0.008),
        VariationModel(sigma_local=0.0, sigma_global=0.0),
    ])
    def test_matches_sample_many(self, model):
        circuit = circuit_named("c432")
        dies = model.sample_many(circuit, 9, seed=5)
        names = list(circuit.gates)
        reference = np.array([[die[g] for die in dies] for g in names])
        assert_identical(model.sample_matrix(circuit, 9, seed=5), reference)
        # Row permutation onto the compiled kernel's gate axis.
        topo = CompiledTiming(circuit).gate_names
        permuted = model.sample_matrix(circuit, 9, seed=5, gate_order=topo)
        assert_identical(permuted,
                         np.array([[die[g] for die in dies] for g in topo]))

    def test_unknown_gate_rejected(self):
        circuit = circuit_named("c432")
        with pytest.raises(ValueError, match="unknown gate"):
            VariationModel().sample_matrix(circuit, 2,
                                           gate_order=["nonexistent"])

    def test_gate_shift_vector_memo(self):
        circuit = circuit_named("c432")
        context = AnalysisContext(circuit)
        vec = context.gate_shift_vector(PROFILE, TEN_YEARS)
        shifts = context.gate_shifts(PROFILE, TEN_YEARS)
        names = context.compiled_timing().gate_names
        assert_identical(vec, np.array([shifts[g] for g in names]))
        assert not vec.flags.writeable
        assert context.stats.misses("gate_shift_vectors") == 1
        context.gate_shift_vector(PROFILE, TEN_YEARS)
        assert context.stats.hits("gate_shift_vectors") == 1


def spans_named(tracer, name):
    return tracer.find(name)


class TestNoAssemblyInTrialLoops:
    """The converted greedy flows must never open ``sta.compiled.assemble``.

    Span accounting is the assertion the benchmarks rely on: the whole
    point of the surface/incremental query path is that trial loops stop
    paying the per-net dict build, so its span count is pinned to zero
    (and the surface span is pinned as actually used).
    """

    def test_dual_vth_records_no_assembly(self):
        circuit = circuit_named("c880")
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            assign_dual_vth(circuit, context=AnalysisContext(circuit),
                            engine="compiled")
        assert spans_named(tracer, "sta.compiled.assemble") == []
        assert len(spans_named(tracer, "sta.compiled.surface")) >= 1

    def test_sizing_records_no_assembly(self):
        circuit = circuit_named("c432")
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            size_for_aging(circuit, PROFILE, TEN_YEARS,
                           context=AnalysisContext(circuit),
                           engine="compiled")
        assert spans_named(tracer, "sta.compiled.assemble") == []
        assert len(spans_named(tracer, "sta.compiled.surface")) >= 1

    def test_control_points_record_no_assembly(self):
        circuit = circuit_named("c432")
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            greedy_control_points(circuit, PROFILE, TEN_YEARS, max_points=4,
                                  engine="compiled")
        assert spans_named(tracer, "sta.compiled.assemble") == []
        assert len(spans_named(tracer, "sta.compiled.surface")) >= 2

    def test_statistical_aging_records_no_assembly(self):
        circuit = circuit_named("c432")
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            statistical_aging(circuit, PROFILE, times=(0.0, TEN_YEARS),
                              n_samples=8, seed=1, engine="compiled",
                              context=AnalysisContext(circuit))
        assert spans_named(tracer, "sta.compiled.assemble") == []

    def test_aged_delays_records_no_assembly(self):
        circuit = circuit_named("c432")
        context = AnalysisContext(circuit)
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            context.aged_delays(PROFILE, TEN_YEARS)
        assert spans_named(tracer, "sta.compiled.assemble") == []
        assert len(spans_named(tracer, "sta.compiled.surface")) == 2


class TestAgedDelaySummary:
    """The summary path equals the full aged_timing fields exactly."""

    def test_matches_aged_timing_fields(self):
        circuit = circuit_named("c880")
        context = AnalysisContext(circuit)
        full = context.aged_timing(PROFILE, TEN_YEARS)
        summary = context.aged_delays(PROFILE, TEN_YEARS)
        assert summary.fresh_delay == full.fresh_delay
        assert summary.aged_delay == full.aged_delay
        assert summary.delay_increase == full.delay_increase
        assert summary.relative_degradation == full.relative_degradation
        assert summary.max_shift == full.max_shift
        assert summary.circuit_name == circuit.name

    def test_standby_and_drop_settings(self):
        from repro.sta import ALL_ONE

        circuit = circuit_named("c432")
        context = AnalysisContext(circuit)
        full = context.aged_timing(PROFILE, TEN_YEARS, standby=ALL_ONE,
                                   supply_drop=0.05)
        summary = context.aged_delays(PROFILE, TEN_YEARS, standby=ALL_ONE,
                                      supply_drop=0.05)
        assert summary.fresh_delay == full.fresh_delay
        assert summary.aged_delay == full.aged_delay
        assert summary.max_shift == full.max_shift

    def test_works_without_context(self):
        from repro.sta import AgingAnalyzer

        circuit = circuit_named("c432")
        analyzer = AgingAnalyzer()
        full = analyzer.aged_timing(circuit, PROFILE, TEN_YEARS)
        summary = analyzer.aged_delays(circuit, PROFILE, TEN_YEARS)
        assert summary.fresh_delay == full.fresh_delay
        assert summary.aged_delay == full.aged_delay
        assert summary.max_shift == full.max_shift


class TestFlowEngineIdentity:
    """End-to-end: converted flows take identical decisions per engine."""

    def test_control_points_engines_identical(self):
        circuit = circuit_named("c432")
        assert_engines_match(
            lambda engine: greedy_control_points(
                circuit, PROFILE, TEN_YEARS, max_points=4, engine=engine))
