#!/usr/bin/env python3
"""NBTI-aware sleep-transistor sign-off (Sec. 4.4).

A power-gated block must meet timing for 10 years.  The PMOS header is
itself the most-stressed device in the design (gate at 0 whenever the
block runs), so a header sized only for the fresh Vth slowly starves the
block of supply.  This example:

1. sizes a header per the paper's eqs. (28)-(30) for several delay
   budgets beta,
2. projects the header's 10-year threshold drift (Fig. 8) and the
   resulting virtual-rail droop,
3. applies the NBTI-aware upsizing of eq. (31) and re-checks,
4. compares footer vs header styles and against no gating at all.

Run:  python examples/sleep_transistor_signoff.py
"""

from repro import OperatingProfile, iscas85
from repro.constants import TEN_YEARS
from repro.flow import format_table, mv, ns, pct
from repro.sleep import (
    SleepStyle,
    design_sleep_transistor,
    gated_aged_delay,
    st_vth_shift,
)
from repro.sta import ALL_ZERO, AgingAnalyzer


def main() -> None:
    circuit = iscas85.load("c880")
    analyzer = AgingAnalyzer()
    ras = "1:9"
    profile = OperatingProfile.from_ras(ras, t_standby=400.0)
    fresh = analyzer.aged_timing(circuit, profile, 0.0).fresh_delay
    print(f"Block: {circuit!r}")
    print(f"Fresh delay {ns(fresh)} ns; scenario RAS {ras}, hot standby "
          f"({profile.t_standby:.0f} K)\n")

    no_st = analyzer.aged_timing(circuit, profile, TEN_YEARS,
                                 standby=ALL_ZERO)
    print(f"Without gating, worst-case 10-year degradation: "
          f"{pct(no_st.relative_degradation)}\n")

    st_vth0 = 0.22
    margin = st_vth_shift(st_vth0, ras)
    print(f"Projected header dVth over 10 years at RAS {ras}: "
          f"{mv(margin)} mV\n")

    rows = []
    for beta in (0.05, 0.03, 0.01):
        plain = design_sleep_transistor(circuit, SleepStyle.HEADER, beta,
                                        vth_st=st_vth0)
        aware = design_sleep_transistor(circuit, SleepStyle.HEADER, beta,
                                        vth_st=st_vth0, nbti_margin=margin)
        t0 = gated_aged_delay(circuit, plain, profile, 0.0)
        t10_plain = gated_aged_delay(circuit, plain, profile, TEN_YEARS)
        t10_aware = gated_aged_delay(circuit, aware, profile, TEN_YEARS)
        rows.append([
            pct(beta, 0),
            f"{plain.aspect_ratio:.0f}",
            f"{aware.aspect_ratio:.0f} (+{pct(aware.aspect_ratio / plain.aspect_ratio - 1)})",
            pct(t0.circuit_delay / fresh - 1),
            pct(t10_plain.circuit_delay / fresh - 1),
            pct(t10_aware.circuit_delay / fresh - 1),
        ])
    print(format_table(
        ["beta", "(W/L)", "(W/L) NBTI-aware", "penalty t=0",
         "10y plain", "10y aware"],
        rows, title="Header sizing sign-off"))

    # Style comparison at beta = 3 %.
    print()
    rows = []
    for style in (SleepStyle.FOOTER, SleepStyle.HEADER, SleepStyle.BOTH):
        d = design_sleep_transistor(circuit, style, 0.03, vth_st=st_vth0)
        pt = gated_aged_delay(circuit, d, profile, TEN_YEARS)
        rows.append([style.value, mv(pt.st_delta_vth) + " mV",
                     mv(pt.v_st) + " mV",
                     pct(pt.circuit_delay / fresh - 1)])
    print(format_table(
        ["style", "ST dVth @10y", "rail drop @10y", "10y delay vs fresh"],
        rows, title="Gating style comparison (beta = 3%)"))
    print(f"\nReference: ungated worst case was "
          f"{pct(no_st.relative_degradation)} — gating both saves leakage "
          "and beats it on aging, the paper's Fig. 11 conclusion.")


if __name__ == "__main__":
    main()
