"""Run reports: span trees + metric snapshots + cache stats in one JSON.

A :class:`RunReport` is the single document a traced run emits (the
CLI's ``--metrics FILE``): the tracer's span trees, the metrics
registry snapshot, and the hit/miss accounting of every
:class:`~repro.context.CacheStats` that registered during the run, all
under one versioned schema.

Cache-stats registration is scope-stacked: each
:class:`~repro.context.AnalysisContext` registers its stats (keyed by
circuit name) into the innermost open scope when collection is active.
The parallel sweep runner pushes a fresh scope around each worker
(:func:`cache_scope`) so a worker's contexts land in that worker's
payload, then re-registers the snapshots in the parent in job order —
pooled and serial runs produce the same merged list.

The schema is validated by a small hand-rolled checker (this package
is zero-dependency by design — no ``jsonschema``), exposed both as
:func:`validate_report` and as a command::

    python -m repro.obs.report report.json

which CI runs against the traced smoke invocation.
"""

from __future__ import annotations

import json
import sys
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import tracing_enabled

#: Version stamp of the report document format.
SCHEMA_VERSION = 1

#: Human-readable sketch of the report schema (see docs/OBSERVABILITY.md
#: for the narrative version; validate_report is the executable one).
REPORT_SCHEMA: Dict[str, Any] = {
    "schema_version": "int == 1",
    "label": "str",
    "meta": {"repro_version": "str", "python": "str"},
    "spans": [{"name": "str", "start": "float >= 0",
               "duration": "float >= 0 | None", "attributes": "dict",
               "children": "[span...]"}],
    "metrics": {"<name>": {"type": "'counter' | 'histogram' | 'gauge'",
                           "...": "..."}},
    "cache_stats": [{"scope": "str", "hits": "int >= 0",
                     "misses": "int >= 0",
                     "artifacts": {"<artifact>": {"hits": "int",
                                                  "misses": "int"}}}],
}

# -- cache-stats registry ----------------------------------------------------

#: Scope stack: entries are (scope name, live CacheStats | snapshot
#: dict).  The root scope always exists; cache_scope pushes/pops.
_scopes: List[List[Tuple[str, Any]]] = [[]]


def register_cache_stats(scope: str, stats: Any) -> None:
    """Register a live ``CacheStats`` under the innermost open scope.

    Called by :class:`~repro.context.AnalysisContext` on construction;
    a no-op unless collection is active, so idle sessions never grow
    the registry.  The reference is strong on purpose — transient
    contexts (built and dropped inside one flow call) must still appear
    in the end-of-scope snapshot — and is released when the enclosing
    :func:`cache_scope` pops (or :func:`reset_cache_registry` runs).
    """
    if not tracing_enabled():
        return
    _scopes[-1].append((scope, stats))


def register_cache_snapshot(entry: Dict[str, Any]) -> None:
    """Register an already-snapshotted cache-stats entry.

    Used when merging worker payloads: the worker's contexts are gone,
    only their snapshots crossed the pool boundary.
    """
    if not tracing_enabled():
        return
    _scopes[-1].append((str(entry.get("scope", "")), dict(entry)))


def snapshot_cache_stats() -> List[Dict[str, Any]]:
    """Snapshot the innermost scope, merged by scope name.

    Entries sharing a scope (two contexts on the same circuit, or a
    live context plus a worker snapshot) are summed artifact by
    artifact; output order is first-registration order, so repeated
    runs of the same flow produce the same list.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for scope, entry_src in _scopes[-1]:
        if isinstance(entry_src, dict):
            artifacts = entry_src.get("artifacts", {})
        else:
            artifacts = entry_src.snapshot()
        entry = merged.get(scope)
        if entry is None:
            entry = merged[scope] = {"scope": scope, "artifacts": {}}
            order.append(scope)
        for name, counts in artifacts.items():
            slot = entry["artifacts"].setdefault(
                name, {"hits": 0, "misses": 0})
            slot["hits"] += int(counts.get("hits", 0))
            slot["misses"] += int(counts.get("misses", 0))
    out = []
    for scope in order:
        entry = merged[scope]
        entry["hits"] = sum(a["hits"] for a in entry["artifacts"].values())
        entry["misses"] = sum(a["misses"]
                              for a in entry["artifacts"].values())
        out.append(entry)
    return out


@contextmanager
def cache_scope(out: List[Dict[str, Any]]):
    """Collect cache-stats registrations of a block into ``out``.

    Pushes a fresh scope so registrations inside the block do not leak
    into the surrounding one; on exit the scope is snapshotted (merged
    by scope name) into ``out`` and popped.  The parallel runner wraps
    each worker call in one of these.
    """
    _scopes.append([])
    try:
        yield out
    finally:
        out.extend(snapshot_cache_stats())
        _scopes.pop()


def reset_cache_registry() -> None:
    """Drop every registration (test isolation hook)."""
    del _scopes[1:]
    _scopes[0].clear()


# -- the report document -----------------------------------------------------


class RunReport:
    """One JSON document describing a traced run.

    Args:
        label: human-readable run label (e.g. ``"repro sweep"``).
        spans: nested span dicts (:meth:`Tracer.span_dicts`).
        metrics: a :meth:`MetricsRegistry.snapshot`.
        cache_stats: merged cache-stats entries
            (:func:`snapshot_cache_stats` output).
        meta: extra environment facts; repro/python versions are always
            stamped in.
    """

    def __init__(self, label: str, *,
                 spans: Optional[List[Dict[str, Any]]] = None,
                 metrics: Optional[Dict[str, Any]] = None,
                 cache_stats: Optional[List[Dict[str, Any]]] = None,
                 meta: Optional[Dict[str, Any]] = None):
        self.label = label
        self.spans = list(spans or [])
        self.metrics = dict(metrics or {})
        self.cache_stats = list(cache_stats or [])
        self.meta = dict(meta or {})

    def to_dict(self) -> Dict[str, Any]:
        """The full document, schema-versioned and JSON-ready."""
        from repro import __version__

        meta = {"repro_version": __version__,
                "python": "%d.%d.%d" % sys.version_info[:3]}
        meta.update(self.meta)
        return {
            "schema_version": SCHEMA_VERSION,
            "label": self.label,
            "meta": meta,
            "spans": self.spans,
            "metrics": self.metrics,
            "cache_stats": self.cache_stats,
        }

    def to_json(self, indent: int = 2) -> str:
        """The document serialized as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: str) -> None:
        """Validate and write the document to ``path``."""
        doc = self.to_dict()
        validate_report(doc)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")

    def validate(self) -> None:
        """Raise ``ValueError`` if the document violates the schema."""
        validate_report(self.to_dict())

    def __repr__(self) -> str:
        return (f"RunReport({self.label!r}, spans={len(self.spans)}, "
                f"metrics={len(self.metrics)}, "
                f"cache_stats={len(self.cache_stats)})")


# -- schema validation -------------------------------------------------------


def _check_span(span: Any, path: str, errors: List[str]) -> None:
    if not isinstance(span, dict):
        errors.append(f"{path}: span must be an object")
        return
    if not isinstance(span.get("name"), str) or not span.get("name"):
        errors.append(f"{path}.name: must be a non-empty string")
    start = span.get("start")
    if not isinstance(start, (int, float)) or start < 0:
        errors.append(f"{path}.start: must be a number >= 0")
    duration = span.get("duration")
    if duration is not None and (not isinstance(duration, (int, float))
                                 or duration < 0):
        errors.append(f"{path}.duration: must be null or a number >= 0")
    if not isinstance(span.get("attributes", {}), dict):
        errors.append(f"{path}.attributes: must be an object")
    children = span.get("children", [])
    if not isinstance(children, list):
        errors.append(f"{path}.children: must be an array")
        return
    for i, child in enumerate(children):
        _check_span(child, f"{path}.children[{i}]", errors)


def _check_metric(name: str, metric: Any, errors: List[str]) -> None:
    path = f"metrics[{name!r}]"
    if not isinstance(metric, dict):
        errors.append(f"{path}: must be an object")
        return
    kind = metric.get("type")
    if kind in ("counter", "gauge"):
        values = metric.get("values")
        if not isinstance(values, dict):
            errors.append(f"{path}.values: must be an object")
        elif not all(isinstance(v, (int, float)) for v in values.values()):
            errors.append(f"{path}.values: values must be numbers")
    elif kind == "histogram":
        if not isinstance(metric.get("count"), int):
            errors.append(f"{path}.count: must be an integer")
        if not isinstance(metric.get("sum"), (int, float)):
            errors.append(f"{path}.sum: must be a number")
        if not isinstance(metric.get("buckets", {}), dict):
            errors.append(f"{path}.buckets: must be an object")
    else:
        errors.append(f"{path}.type: must be 'counter', 'histogram', "
                      f"or 'gauge', got {kind!r}")


def _check_cache_entry(entry: Any, path: str, errors: List[str]) -> None:
    if not isinstance(entry, dict):
        errors.append(f"{path}: must be an object")
        return
    if not isinstance(entry.get("scope"), str):
        errors.append(f"{path}.scope: must be a string")
    for key in ("hits", "misses"):
        value = entry.get(key)
        if not isinstance(value, int) or value < 0:
            errors.append(f"{path}.{key}: must be an integer >= 0")
    artifacts = entry.get("artifacts")
    if not isinstance(artifacts, dict):
        errors.append(f"{path}.artifacts: must be an object")
        return
    for name, counts in artifacts.items():
        if (not isinstance(counts, dict)
                or not isinstance(counts.get("hits"), int)
                or not isinstance(counts.get("misses"), int)):
            errors.append(f"{path}.artifacts[{name!r}]: must be "
                          "{'hits': int, 'misses': int}")


def schema_errors(doc: Any) -> List[str]:
    """Every schema violation of a report document (empty when valid)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["report must be a JSON object"]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"schema_version: must be {SCHEMA_VERSION}, "
                      f"got {doc.get('schema_version')!r}")
    if not isinstance(doc.get("label"), str):
        errors.append("label: must be a string")
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        errors.append("meta: must be an object")
    else:
        for key in ("repro_version", "python"):
            if not isinstance(meta.get(key), str):
                errors.append(f"meta.{key}: must be a string")
    spans = doc.get("spans")
    if not isinstance(spans, list):
        errors.append("spans: must be an array")
    else:
        for i, span in enumerate(spans):
            _check_span(span, f"spans[{i}]", errors)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics: must be an object")
    else:
        for name, metric in metrics.items():
            _check_metric(name, metric, errors)
    cache_stats = doc.get("cache_stats")
    if not isinstance(cache_stats, list):
        errors.append("cache_stats: must be an array")
    else:
        for i, entry in enumerate(cache_stats):
            _check_cache_entry(entry, f"cache_stats[{i}]", errors)
    return errors


def validate_report(doc: Any) -> None:
    """Raise ``ValueError`` listing every schema violation of ``doc``."""
    errors = schema_errors(doc)
    if errors:
        raise ValueError("invalid RunReport document:\n  "
                         + "\n  ".join(errors))


# -- Prometheus text exposition ----------------------------------------------


def _prom_name(name: str) -> str:
    """Sanitize a metric name to the Prometheus grammar."""
    import re

    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_number(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _prom_series(name: str, labels: Dict[str, str], value: Any) -> str:
    if labels:
        body = ",".join(f'{k}="{_prom_escape(str(v))}"'
                        for k, v in labels.items())
        return f"{name}{{{body}}} {_prom_number(value)}"
    return f"{name} {_prom_number(value)}"


def _prom_histogram(name: str, metric: Dict[str, Any],
                    lines: List[str]) -> None:
    """Cumulative ``le`` buckets from the power-of-two exponent keys.

    Exponent bucket ``k`` holds values in ``[2**k, 2**(k+1))``, so its
    Prometheus upper bound is ``2**(k+1)``; the ``le0`` bucket (values
    <= 0) maps to ``le="0"``.
    """
    lines.append(f"# TYPE {name} histogram")
    buckets = metric.get("buckets", {})
    bounds: List[Tuple[float, str, int]] = []
    for key, n in buckets.items():
        if key == "le0":
            bounds.append((0.0, "0", int(n)))
        else:
            upper = 2.0 ** (int(key) + 1)
            bounds.append((upper, _prom_number(upper), int(n)))
    cumulative = 0
    for _, label, n in sorted(bounds, key=lambda b: b[0]):
        cumulative += n
        lines.append(_prom_series(f"{name}_bucket", {"le": label},
                                  cumulative))
    lines.append(_prom_series(f"{name}_bucket", {"le": "+Inf"},
                              int(metric.get("count", 0))))
    lines.append(_prom_series(f"{name}_sum", {}, metric.get("sum", 0.0)))
    lines.append(_prom_series(f"{name}_count", {},
                              int(metric.get("count", 0))))


def to_prometheus(doc: Dict[str, Any]) -> str:
    """A RunReport document as Prometheus text exposition (v0.0.4).

    Counters and gauges map directly (the label key is ``series``);
    histograms emit cumulative ``le`` buckets derived from the
    power-of-two exponent buckets; cache-stats entries become
    ``repro_cache_hits_total`` / ``repro_cache_misses_total`` labeled
    by scope and artifact.  ``GET /metrics.prom`` on the serve tier
    renders its live RunReport through this.
    """
    lines: List[str] = []
    for name in sorted(doc.get("metrics", {})):
        metric = doc["metrics"][name]
        prom = _prom_name(name)
        kind = metric.get("type")
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {prom} {kind}")
            values = metric.get("values", {})
            for label in sorted(values):
                labels = {"series": label} if label else {}
                lines.append(_prom_series(prom, labels, values[label]))
        elif kind == "histogram":
            _prom_histogram(prom, metric, lines)
    for entry in doc.get("cache_stats", []):
        scope = str(entry.get("scope", ""))
        for artifact in sorted(entry.get("artifacts", {})):
            counts = entry["artifacts"][artifact]
            labels = {"scope": scope, "artifact": artifact}
            lines.append(_prom_series("repro_cache_hits_total", labels,
                                      int(counts.get("hits", 0))))
            lines.append(_prom_series("repro_cache_misses_total", labels,
                                      int(counts.get("misses", 0))))
    return "\n".join(lines) + "\n" if lines else ""


USAGE = """\
usage: python -m repro.obs REPORT.json ...

Validate RunReport documents against the schema.  Pass '-' to read
one document from stdin.  Every violation is reported (the checker
does not stop at the first).

exit codes:
  0  every document is schema-valid
  1  at least one document is invalid or unreadable
  2  usage error (no inputs given)\
"""


def main(argv: Optional[List[str]] = None) -> int:
    """Validate report files: ``python -m repro.obs REPORT.json ...``.

    Accepts file paths or ``-`` for stdin.  Exit codes: 0 all valid,
    1 any invalid/unreadable, 2 usage error.
    """
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths or "-h" in paths or "--help" in paths:
        print(USAGE, file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        try:
            if path == "-":
                doc = json.load(sys.stdin)
                path = "<stdin>"
            else:
                with open(path, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable ({exc})")
            failed = True
            continue
        errors = schema_errors(doc)
        if errors:
            print(f"{path}: INVALID")
            for err in errors:
                print(f"  {err}")
            failed = True
        else:
            spans = doc.get("spans", [])
            print(f"{path}: ok ({_span_count(spans)} spans, "
                  f"{len(doc.get('metrics', {}))} metrics, "
                  f"{len(doc.get('cache_stats', []))} cache scopes)")
    return 1 if failed else 0


def _span_count(spans: List[Dict[str, Any]]) -> int:
    return sum(1 + _span_count(s.get("children", [])) for s in spans
               if isinstance(s, dict))


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    sys.exit(main())
