"""Process variation + statistical aging timing (S11)."""

from repro.variation.sampling import VariationModel
from repro.variation.statistical import (
    FIG12_TIMES,
    FastAgedTimer,
    StatisticalAgingResult,
    statistical_aging,
)

__all__ = [
    "VariationModel",
    "FIG12_TIMES",
    "FastAgedTimer",
    "StatisticalAgingResult",
    "statistical_aging",
]
